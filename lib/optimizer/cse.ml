(** Common-subexpression elimination over value numbers.

    Rewrites [r := e] (for a non-trivial pure expression [e]) to
    [r := s] whenever some register [s] provably holds [e]'s value — the
    {!Analysis.Vn} must-facts.  Expressions range over registers only,
    so the rewrite is a pure register-level equivalence: no memory event
    changes, which is what makes CSE one of the {e bidirectional}
    clean-up passes ({!Certabs} exploits this).  Value numbers still
    thread through non-atomic loads and stores, so an expression
    computed from a loaded value stays available exactly as long as the
    mode-aware kill rules allow (acquire events kill location bindings;
    relaxed/release accesses do not). *)

open Lang

module Vn = Analysis.Vn

type stats = {
  mutable rewrites : int;
  mutable max_loop_iters : int;
  mutable sites : Analysis.Path.t list;  (* reversed; input coordinates *)
}

(* Only non-trivial pure computations are worth a copy: an operator
   application whose operands are all numbered. *)
let nontrivial = function
  | Expr.Binop _ | Expr.Unop _ -> true
  | Expr.Const _ | Expr.Reg _ -> false

let rec go (c : Vn.ctx) (stats : stats) (path : Analysis.Path.t)
    (st : Vn.state) (s : Stmt.t) : Stmt.t * Vn.state =
  match s with
  | Stmt.Assign (r, e) when nontrivial e ->
    (match Vn.eval c st e with
     | Some n ->
       let hs = Reg.Set.remove r (Vn.holders st n) in
       (match Reg.Set.min_elt_opt hs with
        | Some s_reg ->
          stats.rewrites <- stats.rewrites + 1;
          stats.sites <- path :: stats.sites;
          let st = Vn.transfer c st (Stmt.Assign (r, Expr.Reg s_reg)) in
          (Stmt.Assign (r, Expr.Reg s_reg), st)
        | None -> (s, Vn.transfer c st s))
     | None -> (s, Vn.transfer c st s))
  | Stmt.Seq (a, b) ->
    let a', st = go c stats (Analysis.Path.child path Analysis.Path.Fst) st a in
    let b', st = go c stats (Analysis.Path.child path Analysis.Path.Snd) st b in
    (Stmt.seq a' b', st)
  | Stmt.If (e, a, b) ->
    let a', sa = go c stats (Analysis.Path.child path Analysis.Path.Then) st a in
    let b', sb = go c stats (Analysis.Path.child path Analysis.Path.Else) st b in
    (Stmt.If (e, a', b'), Vn.join sa sb)
  | Stmt.While (e, body) ->
    let bpath = Analysis.Path.child path Analysis.Path.Body in
    let probe h =
      let throwaway = { rewrites = 0; max_loop_iters = 0; sites = [] } in
      snd (go c throwaway bpath h body)
    in
    let head, iters = Vn.loop_fix probe st in
    stats.max_loop_iters <- max stats.max_loop_iters iters;
    let body', _ = go c stats bpath head body in
    (Stmt.While (e, body'), head)
  | leaf -> (leaf, Vn.transfer c st leaf)

(** Run the CSE pass. *)
let run (s : Stmt.t) : Stmt.t * int * int * Analysis.Path.t list =
  let stats = { rewrites = 0; max_loop_iters = 1; sites = [] } in
  let s', _ = go (Vn.create ()) stats Analysis.Path.root Vn.empty s in
  (s', stats.rewrites, stats.max_loop_iters, List.rev stats.sites)
