(** Load-to-load forwarding (App D, Fig 8a).

    Per non-atomic location, the set of registers known to hold its
    current value (invariant: x ∈ P ∧ r ∈ R(x) ⟹ rs(r) ⊑ M(x)); killed
    by stores to the location, acquire accesses, and register
    reassignment.  Extension over Fig 8a: [x :=na b] records [R(x) = {b}],
    giving register-level store-to-load forwarding. *)

open Lang

type astate = Reg.Set.t Loc.Map.t  (** absent = ∅ *)

val get : astate -> Loc.t -> Reg.Set.t
val join : astate -> astate -> astate  (** pointwise intersection *)
val leq : astate -> astate -> bool
val transfer : astate -> Stmt.t -> astate

(** Run the pass: transformed program, loads rewritten, max loop fixpoint
    iterations, and the rewritten loads' paths in the input program. *)
val run : Stmt.t -> Stmt.t * int * int * Analysis.Path.t list
