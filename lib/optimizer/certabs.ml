(** Abstract-interpretation certification of refinement (see
    certabs.mli). *)

open Lang

module Vn = Analysis.Vn

type rule =
  | Elim_load of Reg.t * Loc.t
  | Intro_load of Reg.t * Loc.t
  | Elim_store of Loc.t * bool  (** [true] = covered, [false] = no-op *)
  | Intro_store of Loc.t * bool  (** [true] = covered, [false] = no-op *)
  | Reorder of Stmt.t * Stmt.t  (** [Reorder (s1, s2)]: s2 moved above s1 *)
  | Hoist_past_loop of Stmt.t
  | Hoist_loop_load of Reg.t * Loc.t

type cert = { rules : rule list }

let equal_stmt (a : Stmt.t) (b : Stmt.t) = Stdlib.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Spines and leaf classification                                      *)
(* ------------------------------------------------------------------ *)

let rec flatten s acc =
  match s with
  | Stmt.Seq (a, b) -> flatten a (flatten b acc)
  | Stmt.Skip -> acc
  | s -> s :: acc

let spine s = flatten s []

let is_leaf = function
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> false
  | _ -> true

(* Evaluation cannot fault: no division/modulo anywhere. *)
let rec total_expr = function
  | Expr.Const _ | Expr.Reg _ -> true
  | Expr.Binop ((Expr.Div | Expr.Mod), _, _) -> false
  | Expr.Binop (_, a, b) -> total_expr a && total_expr b
  | Expr.Unop (_, a) -> total_expr a

type cls =
  | Pure_total  (** register-only, cannot fault: [Assign] of a total expr *)
  | Pure_ub  (** register-only but may fault (division) *)
  | Na_read of Loc.t
  | Na_write of Loc.t
  | Rlx_read of Loc.t
  | Rlx_write of Loc.t
  | Acq_read of Loc.t
  | Rel_write of Loc.t
  | F_acq
  | F_rel
  | F_strong  (** acq-rel and sc fences *)
  | Rmw of Loc.t
  | Env_choice  (** [Choose]/[Freeze]: emits a choice label *)
  | Observable  (** [Print] *)
  | Control  (** [Return]/[Abort] *)
  | Compound

let classify = function
  | Stmt.Skip -> Pure_total
  | Stmt.Assign (_, e) -> if total_expr e then Pure_total else Pure_ub
  | Stmt.Load (_, Mode.Rna, x) -> Na_read x
  | Stmt.Load (_, Mode.Rrlx, x) -> Rlx_read x
  | Stmt.Load (_, Mode.Racq, x) -> Acq_read x
  | Stmt.Store (Mode.Wna, x, _) -> Na_write x
  | Stmt.Store (Mode.Wrlx, x, _) -> Rlx_write x
  | Stmt.Store (Mode.Wrel, x, _) -> Rel_write x
  | Stmt.Fence Mode.Facq -> F_acq
  | Stmt.Fence Mode.Frel -> F_rel
  | Stmt.Fence (Mode.Facqrel | Mode.Fsc) -> F_strong
  | Stmt.Cas (_, x, _, _) | Stmt.Fadd (_, x, _) -> Rmw x
  | Stmt.Choose _ | Stmt.Freeze _ -> Env_choice
  | Stmt.Print _ -> Observable
  | Stmt.Abort | Stmt.Return _ -> Control
  | Stmt.Seq _ | Stmt.If _ | Stmt.While _ -> Compound

let defs = function
  | Stmt.Assign (r, _)
  | Stmt.Load (r, _, _)
  | Stmt.Cas (r, _, _, _)
  | Stmt.Fadd (r, _, _)
  | Stmt.Choose r
  | Stmt.Freeze (r, _) ->
    Reg.Set.singleton r
  | _ -> Reg.Set.empty

let uses = function
  | Stmt.Assign (_, e)
  | Stmt.Store (_, _, e)
  | Stmt.Print e
  | Stmt.Return e
  | Stmt.Freeze (_, e)
  | Stmt.Fadd (_, _, e) ->
    Expr.regs e
  | Stmt.Cas (_, _, e1, e2) -> Reg.Set.union (Expr.regs e1) (Expr.regs e2)
  | _ -> Reg.Set.empty

let loc_of = function
  | Stmt.Load (_, _, x)
  | Stmt.Store (_, x, _)
  | Stmt.Cas (_, x, _, _)
  | Stmt.Fadd (_, x, _) ->
    Some x
  | _ -> None

let writes = function
  | Stmt.Store _ | Stmt.Cas _ | Stmt.Fadd _ -> true
  | _ -> false

let reg_indep s1 s2 =
  let d1 = defs s1 and d2 = defs s2 in
  Reg.Set.is_empty (Reg.Set.inter d1 (Reg.Set.union d2 (uses s2)))
  && Reg.Set.is_empty (Reg.Set.inter d2 (uses s1))

(* May [s2] move up past [s1] (src has s1; s2, tgt has s2 first)?  Each
   clause is one of the catalog's certified reorderings; everything else
   — acquires moving down, releases moving up, UB crossing an acquire,
   RMWs and strong fences in any swap — is refused.  Proves the advanced
   notion only (late-UB clause, Remark 3). *)
let may_swap s1 s2 =
  is_leaf s1 && is_leaf s2
  && (not (equal_stmt s1 s2))
  && reg_indep s1 s2
  && (match (loc_of s1, loc_of s2) with
     | Some x, Some y when Loc.equal x y && (writes s1 || writes s2) -> false
     | _ -> true)
  &&
  match (classify s1, classify s2) with
  | (Control | Compound), _ | _, (Control | Compound) -> false
  (* pure register traffic commutes with anything non-control *)
  | Pure_total, _ | _, Pure_total -> true
  (* independent non-atomics commute (Ex 2.5) *)
  | (Na_read _ | Na_write _), (Na_read _ | Na_write _) -> true
  (* late UB / Remark 3: a non-atomic access or a faulting pure
     computation may move up past a relaxed read or a choice label *)
  | (Rlx_read _ | Env_choice), (Na_read _ | Na_write _ | Pure_ub) -> true
  (* roach motel: an acquire may move up past a non-atomic (the
     non-atomic sinks into the critical section, Ex 2.9 i'/iii') *)
  | (Na_read _ | Na_write _), (Acq_read _ | F_acq) -> true
  (* roach motel: a non-atomic may move up past a release (into the
     section the release closes, Ex 2.9 ii'/iv') *)
  | (Rel_write _ | F_rel), (Na_read _ | Na_write _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Store elimination / introduction windows                            *)
(* ------------------------------------------------------------------ *)

(* Between a deleted store to [x] and its covering store: leaves that
   neither observe [x] nor publish memory (no release, no fence, no
   RMW).  The DSE pass handles the across-release windows the advanced
   notion additionally allows (Ex 3.5). *)
let transparent_for x = function
  | Stmt.Assign _ | Stmt.Choose _ | Stmt.Freeze _ | Stmt.Skip -> true
  | Stmt.Load (_, (Mode.Rna | Mode.Rrlx), y) -> not (Loc.equal x y)
  | Stmt.Store ((Mode.Wna | Mode.Wrlx), y, _) -> not (Loc.equal x y)
  | _ -> false

let rec covered_elim x = function
  | [] -> false
  | Stmt.Store (Mode.Wna, y, _) :: _ when Loc.equal x y -> true
  | s :: rest -> transparent_for x s && covered_elim x rest

(* Between an introduced store and the (already justified) store that
   overwrites it: register-pure leaves only — nothing may fault, touch
   memory, or emit an observable. *)
let pure_reg_leaf = function
  | Stmt.Assign (_, e) | Stmt.Freeze (_, e) -> total_expr e
  | Stmt.Choose _ | Stmt.Skip -> true
  | _ -> false

let rec covered_intro x = function
  | [] -> false
  | Stmt.Store (Mode.Wna, y, _) :: _ when Loc.equal x y -> true
  | s :: rest -> pure_reg_leaf s && covered_intro x rest

(* ------------------------------------------------------------------ *)
(* Loop rules                                                          *)
(* ------------------------------------------------------------------ *)

let memory_silent s =
  let fp = Stmt.footprint s in
  Loc.Set.is_empty fp.Stmt.na && Loc.Set.is_empty fp.Stmt.at

(* Hoisting a load of [x] out of a loop body is justified when nothing
   in the body can change what the load observes: no acquire-class
   event (which could import fresh memory for [x]) and no store to [x]
   itself. *)
let rec body_stable_for x = function
  | Stmt.Load (_, Mode.Racq, _)
  | Stmt.Cas _ | Stmt.Fadd _
  | Stmt.Fence (Mode.Facq | Mode.Facqrel | Mode.Fsc) ->
    false
  | Stmt.Store (_, y, _) -> not (Loc.equal x y)
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) ->
    body_stable_for x a && body_stable_for x b
  | Stmt.While (_, b) -> body_stable_for x b
  | _ -> true

(* Replace every non-atomic load of [x] by a copy from [r']. *)
let rec subst_loads x r' = function
  | Stmt.Load (r, Mode.Rna, y) when Loc.equal x y ->
    Stmt.Assign (r, Expr.Reg r')
  | Stmt.Seq (a, b) -> Stmt.Seq (subst_loads x r' a, subst_loads x r' b)
  | Stmt.If (e, a, b) -> Stmt.If (e, subst_loads x r' a, subst_loads x r' b)
  | Stmt.While (e, b) -> Stmt.While (e, subst_loads x r' b)
  | s -> s

(* ------------------------------------------------------------------ *)
(* The matcher                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-point context: VN must-facts plus the set of locations provably
   held with both permissions (an own na store since the last
   release-class event) — the licence for no-op store introduction. *)
type env = { st : Vn.state; ws : Loc.Set.t }

let init_env = { st = Vn.empty; ws = Loc.Set.empty }

let step c env s =
  let st = if is_leaf s then Vn.transfer c env.st s else Vn.empty in
  let ws =
    if not (is_leaf s) then Loc.Set.empty
    else
      match s with
      | Stmt.Store (Mode.Wna, x, _) -> Loc.Set.add x env.ws
      | Stmt.Store (Mode.Wrel, _, _)
      | Stmt.Fence (Mode.Frel | Mode.Facqrel | Mode.Fsc)
      | Stmt.Cas _ | Stmt.Fadd _ ->
        Loc.Set.empty
      | _ -> env.ws
  in
  { st; ws }

let ( <|> ) a b = match a with Some _ as r -> r | None -> b ()

(* [go] rewrites the source spine into the target spine, one certified
   refinement step at a time; [env] always describes the current
   (rewritten) program at the match point, which coincides with the
   matched target prefix.  [fuel] bounds the non-consuming rules. *)
let rec go c src_regs env srcs tgts fuel acc =
  match (srcs, tgts) with
  | [], [] -> Some (List.rev acc)
  | s :: ss, t :: ts when equal_stmt s t ->
    go c src_regs (step c env s) ss ts fuel acc
    <|> fun () -> rules c src_regs env srcs tgts fuel acc
  | _ -> rules c src_regs env srcs tgts fuel acc

and rules c src_regs env srcs tgts fuel acc =
  let elim_load () =
    match (srcs, tgts) with
    | Stmt.Load (r, Mode.Rna, x) :: ss, Stmt.Assign (r2, e) :: ts
      when Reg.equal r r2 -> (
      match (Vn.eval c env.st e, Vn.mem_vn env.st x) with
      | Some n1, Some n2 when n1 = n2 ->
        let env = step c env (Stmt.Assign (r, e)) in
        go c src_regs env ss ts fuel (Elim_load (r, x) :: acc)
      | _ -> None)
    | _ -> None
  in
  let intro_load () =
    match (srcs, tgts) with
    | Stmt.Assign (r, e) :: ss, (Stmt.Load (r2, Mode.Rna, x) as ld) :: ts
      when Reg.equal r r2 -> (
      match (Vn.eval c env.st e, Vn.mem_vn env.st x) with
      | Some n1, Some n2 when n1 = n2 ->
        go c src_regs (step c env ld) ss ts fuel (Intro_load (r, x) :: acc)
      | _ -> None)
    | _ -> None
  in
  let elim_store () =
    match srcs with
    | Stmt.Store (Mode.Wna, x, e) :: ss ->
      let noop () =
        match (Vn.eval c env.st e, Vn.mem_vn env.st x) with
        | Some n1, Some n2 when n1 = n2 ->
          (* value unchanged: deleting the store leaves memory — and
             every standing fact — intact *)
          go c src_regs env ss tgts fuel (Elim_store (x, false) :: acc)
        | _ -> None
      in
      let covered () =
        if covered_elim x ss then
          go c src_regs env ss tgts fuel (Elim_store (x, true) :: acc)
        else None
      in
      noop () <|> covered
    | _ -> None
  in
  let intro_store () =
    match tgts with
    | (Stmt.Store (Mode.Wna, x, e) as st_) :: ts when total_expr e ->
      let noop () =
        if Loc.Set.mem x env.ws then
          match (Vn.eval c env.st e, Vn.mem_vn env.st x) with
          | Some n1, Some n2 when n1 = n2 ->
            go c src_regs (step c env st_) srcs ts fuel
              (Intro_store (x, false) :: acc)
          | _ -> None
        else None
      in
      let covered () =
        if covered_intro x ts then
          (* permission is contingent on the covering store, so the
             introduced one must not enter [ws] itself *)
          let env = { (step c env st_) with ws = env.ws } in
          go c src_regs env srcs ts fuel (Intro_store (x, true) :: acc)
        else None
      in
      noop () <|> covered
    | _ -> None
  in
  let reorder () =
    match (srcs, tgts) with
    | s1 :: s2 :: ss, t :: _
      when fuel > 0 && equal_stmt s2 t && may_swap s1 s2 ->
      go c src_regs env (s2 :: s1 :: ss) tgts (fuel - 1)
        (Reorder (s1, s2) :: acc)
    | _ -> None
  in
  let hoist_past_loop () =
    match (srcs, tgts) with
    | (Stmt.While (_, _) as w) :: s2 :: ss, t :: _
      when fuel > 0 && equal_stmt s2 t && memory_silent w
           && (match classify s2 with
              | Na_read _ | Pure_total -> true
              | _ -> false)
           && Reg.Set.is_empty
                (Reg.Set.inter (Stmt.footprint w).Stmt.regs
                   (Reg.Set.union (defs s2) (uses s2))) ->
      go c src_regs env (s2 :: w :: ss) tgts (fuel - 1)
        (Hoist_past_loop s2 :: acc)
    | _ -> None
  in
  let hoist_loop_load () =
    match (srcs, tgts) with
    | Stmt.While (e, body) :: ss,
      (Stmt.Load (r', Mode.Rna, x) as ld) :: Stmt.While (e', body') :: ts
      when Expr.equal e e'
           && (not (Reg.Set.mem r' src_regs))
           && body_stable_for x body
           && equal_stmt (subst_loads x r' body) body' ->
      let env = step c env ld in
      (* the two loops are matched as a rewritten compound pair *)
      let env = step c env (Stmt.While (e, body)) in
      go c src_regs env ss ts fuel (Hoist_loop_load (r', x) :: acc)
    | _ -> None
  in
  elim_load () <|> intro_load <|> elim_store <|> intro_store <|> reorder
  <|> hoist_past_loop <|> hoist_loop_load

let attempt ?(fuel = 64) ~(src : Stmt.t) ~(tgt : Stmt.t) () : cert option =
  if
    not
      (Analysis.Modes.consistent [ src ] && Analysis.Modes.consistent [ tgt ])
  then None
  else
    let s = Stmt.normalize src and t = Stmt.normalize tgt in
    if equal_stmt s t then Some { rules = [] }
    else
      let c = Vn.create () in
      let src_regs = (Stmt.footprint s).Stmt.regs in
      match go c src_regs init_env (spine s) (spine t) fuel [] with
      | Some rules -> Some { rules }
      | None -> None

(* ------------------------------------------------------------------ *)

let rule_name = function
  | Elim_load _ -> "elim-load"
  | Intro_load _ -> "intro-load"
  | Elim_store (_, false) -> "elim-noop-store"
  | Elim_store (_, true) -> "elim-covered-store"
  | Intro_store (_, false) -> "intro-noop-store"
  | Intro_store (_, true) -> "intro-covered-store"
  | Reorder _ -> "reorder"
  | Hoist_past_loop _ -> "hoist-past-loop"
  | Hoist_loop_load _ -> "hoist-loop-load"

let pp_rule ppf r =
  match r with
  | Elim_load (rg, x) | Intro_load (rg, x) ->
    Fmt.pf ppf "%s %a:%a" (rule_name r) Reg.pp rg Loc.pp x
  | Elim_store (x, _) | Intro_store (x, _) ->
    Fmt.pf ppf "%s %a" (rule_name r) Loc.pp x
  | Reorder (s1, s2) ->
    Fmt.pf ppf "reorder [%a] above [%a]" Stmt.pp s2 Stmt.pp s1
  | Hoist_past_loop s -> Fmt.pf ppf "hoist [%a] past loop" Stmt.pp s
  | Hoist_loop_load (rg, x) ->
    Fmt.pf ppf "hoist-loop-load %a:%a" Reg.pp rg Loc.pp x

let pp ppf (c : cert) =
  if c.rules = [] then Fmt.pf ppf "trivial (src = tgt)"
  else Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_rule) c.rules
