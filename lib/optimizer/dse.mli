(** Dead (overwritten) store elimination (App D, Fig 8b).

    Backward tokens per non-atomic location: [Dead_near] (◦: overwrite
    ahead, no acquire read and no read of x before it), [Dead_far] (•:
    possibly past an acquire, but no release and no read of x), [Live]
    (⊤).  A non-atomic store with post-token ◦/• is removed — sound even
    across a release write (Example 3.5, needs the advanced refinement
    notion), but not across a release-acquire pair. *)

open Lang

type token = Dead_near | Dead_far | Live

val token_join : token -> token -> token

type astate = token Loc.Map.t  (** absent = [Live] *)

val get : astate -> Loc.t -> token
val join : astate -> astate -> astate

(** Backward transfer: the state before an instruction, given the state
    after it. *)
val transfer_back : astate -> Stmt.t -> astate

(** Run the pass: transformed program, stores removed, max loop fixpoint
    iterations, and the removed stores' paths in the input program. *)
val run : Stmt.t -> Stmt.t * int * int * Analysis.Path.t list
