(** The optimizer pipeline (§4): SLF, LLF, DSE, LICM, with per-pass
    statistics, plus whole-pipeline entry points. *)

open Lang

type pass = CP | SLF | LLF | RLE | CSE | DSE | LICM | DAE

(* The paper's four passes, bracketed by the sequential clean-up passes:
   constant propagation feeds SLF (its Fig 3 domain forwards constants),
   the value-numbering passes (RLE, CSE) catch the copy-chained
   redundancies the set-based forwardings miss, dead-assignment
   elimination sweeps up the copies the forwarding passes leave behind. *)
let all_passes = [ CP; SLF; LLF; RLE; CSE; DSE; LICM; DAE ]

let paper_passes = [ SLF; LLF; DSE; LICM ]

let pass_name = function
  | CP -> "constant propagation"
  | SLF -> "store-to-load forwarding"
  | LLF -> "load-to-load forwarding"
  | RLE -> "redundant load elimination"
  | CSE -> "common subexpression elimination"
  | DSE -> "dead store elimination"
  | LICM -> "loop invariant code motion"
  | DAE -> "dead assignment elimination"

let pass_of_string = function
  | "cp" -> Some CP
  | "slf" -> Some SLF
  | "llf" -> Some LLF
  | "rle" -> Some RLE
  | "cse" -> Some CSE
  | "dse" -> Some DSE
  | "licm" -> Some LICM
  | "dae" -> Some DAE
  | _ -> None

let run_pass (p : pass) (s : Stmt.t) :
    Stmt.t * int * int * Analysis.Path.t list =
  match p with
  | CP -> Cp.run s
  | SLF -> Slf.run s
  | LLF -> Llf.run s
  | RLE -> Rle.run s
  | CSE -> Cse.run s
  | DSE -> Dse.run s
  | LICM -> Licm.run s
  | DAE -> Dae.run s

type pass_report = {
  pass : pass;
  rewrites : int;  (** instructions rewritten/removed *)
  loop_iters : int;  (** max analysis fixpoint iterations over any loop *)
  sites : Analysis.Path.t list;
      (** rewrite sites, in the coordinates of the program this pass
          invocation received (exact source coordinates only for the first
          pass of the first round) *)
}

type report = {
  input : Stmt.t;
  output : Stmt.t;
  passes : pass_report list;
  size_before : int;
  size_after : int;
}

let run_pipeline passes s =
  List.fold_left
    (fun (s, acc) p ->
      let s', rewrites, loop_iters, sites = run_pass p s in
      (s', { pass = p; rewrites; loop_iters; sites } :: acc))
    (s, []) passes

(* Merge per-round reports: sum rewrites, max loop iterations, per pass in
   pipeline order. *)
let merge_reports (rounds : pass_report list list) (passes : pass list) :
    pass_report list =
  List.map
    (fun p ->
      List.fold_left
        (fun acc round ->
          List.fold_left
            (fun acc r ->
              if r.pass = p then
                {
                  acc with
                  rewrites = acc.rewrites + r.rewrites;
                  loop_iters = max acc.loop_iters r.loop_iters;
                  sites = acc.sites @ r.sites;
                }
              else acc)
            acc round)
        { pass = p; rewrites = 0; loop_iters = 1; sites = [] }
        rounds)
    passes

(** Run a pipeline of passes (default: {!all_passes}), iterated until the
    program stabilises (passes enable one another: constant propagation
    feeds SLF, forwarding feeds dead-code removal, ...) — so [optimize] is
    idempotent.  [max_rounds] bounds the iteration; each pass strictly
    reduces or preserves a well-founded measure, so 8 rounds is far more
    than any pipeline needs in practice. *)
let optimize ?(passes = all_passes) ?(max_rounds = 8) (s : Stmt.t) : report =
  let rec rounds s acc n =
    let s', round = run_pipeline passes s in
    let acc = List.rev round :: acc in
    if n <= 1 || Stdlib.compare s s' = 0 then (s', acc)
    else rounds s' acc (n - 1)
  in
  let output, rev_rounds = rounds s [] max_rounds in
  {
    input = s;
    output;
    passes = merge_reports (List.rev rev_rounds) passes;
    size_before = Stmt.size s;
    size_after = Stmt.size output;
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>size: %d -> %d@ %a@]" r.size_before r.size_after
    (Fmt.list ~sep:Fmt.cut (fun ppf pr ->
         Fmt.pf ppf "%-28s rewrites=%d loop-iters<=%d" (pass_name pr.pass)
           pr.rewrites pr.loop_iters))
    r.passes
