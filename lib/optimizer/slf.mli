(** Store-to-load forwarding (§4, Fig 3).

    Tokens per non-atomic location: [Fresh v] (◦(v): most recent store
    wrote v, no release since — so x ∈ P and v ⊑ M(x)), [Rel v] (•(v):
    a release, but no completing acquire, intervened — so
    x ∈ P ⟹ v ⊑ M(x)), [Top].  A non-atomic load is rewritten to a
    register assignment under ◦(v)/•(v).  The token lattice has height 3,
    so loop fixpoints stabilise within 3 iterations (measured by E3). *)

open Lang

type token = Fresh of Value.t | Rel of Value.t | Top

val token_join : token -> token -> token
val token_leq : token -> token -> bool

type astate = token Loc.Map.t  (** absent = [Top] *)

val get : astate -> Loc.t -> token
val join : astate -> astate -> astate
val leq : astate -> astate -> bool
val top : astate

(** Transfer for non-control instructions. *)
val transfer : astate -> Stmt.t -> astate

(** Run the pass: transformed program, loads rewritten, max loop fixpoint
    iterations, and the rewritten loads' paths in the input program. *)
val run : Stmt.t -> Stmt.t * int * int * Analysis.Path.t list
