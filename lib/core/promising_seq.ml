(** Promising_seq — umbrella library for the PLDI 2022 reproduction
    "Sequential Reasoning for Optimizing Compilers under Weak Memory
    Concurrency" (Cho, Lee, Lee, Hur, Lahav).

    The library is organised like the paper:

    - {!Lang}: the WHILE language and its labeled transition system
      (values with [undef], access modes, expressions, statements, parser,
      finite checking domains, random generators);
    - {!Seq}: the sequential permission machine SEQ (§2), behaviors and
      simple refinement (Def 2.1–2.4), oracles and advanced refinement up
      to commitment sets (§3, Fig 2/Fig 6);
    - {!Ps}: PS_na — the promising semantics with non-atomic accesses
      (§5, Fig 5): views, messages, promises, certification, bounded
      exhaustive exploration, and behavioral refinement (Def 5.2/5.3);
    - {!Baselines}: SC interleaving with happens-before race detection,
      the C/C++11-style catch-fire semantics, and DRF-guarantee checks;
    - {!Opt}: the certified optimizer (§4, App D): SLF, LLF, DSE, LICM,
      and per-run translation validation in SEQ;
    - {!Litmus}: the paper's examples as a machine-readable corpus, and
      the empirical adequacy experiment (Thm 6.2);
    - {!Engine}: the multicore sweep engine the experiment matrices run
      on, with a parallel = sequential determinism contract
      (docs/ENGINE.md);
    - {!Service}: the seqd refinement-check service — wire protocol,
      two-tier content-addressed result cache, request handler, server
      accept loop and client (docs/SERVICE.md).

    Quickstart:
    {[
      open Promising_seq
      let src = Lang.Parser.stmt_of_string "X.store(na,1); a = X.load(na); return a"
      let tgt = Lang.Parser.stmt_of_string "X.store(na,1); a = 1; return a"
      let d = Lang.Domain.of_stmts [src; tgt]
      let sound = Seq.Refine.check d ~src ~tgt   (* = true *)
    ]} *)

module Lang = Lang
module Seq = Seq_model
module Ps = Promising
module Baselines = Baselines
module Opt = Optimizer
module Litmus = Litmus
module Engine = Engine
module Service = Service
