(** Finite domains for exhaustive checking.

    The paper's refinement notions quantify over arbitrary values,
    memories, permission sets, and environments; restricting the defined
    values to a small finite set and the locations to the program
    footprint makes every quantifier finite, so the checkers decide
    refinement exactly {e on this domain} (see DESIGN.md). *)

type t = {
  values : Value.t list;  (** defined values, no [undef] *)
  na_locs : Loc.t list;   (** non-atomic locations, sorted *)
  at_locs : Loc.t list;   (** atomic locations, sorted *)
}

val default_values : Value.t list
(** [{0, 1, 2}] — enough for every counterexample in the paper. *)

val make :
  ?values:Value.t list -> na_locs:Loc.t list -> at_locs:Loc.t list -> unit -> t

val of_stmts : ?values:Value.t list -> Stmt.t list -> t
(** Domain derived from the footprints of the given statements: locations
    accessed non-atomically anywhere are [na]; purely atomic ones [at].
    Mixed locations are classified [na] — SEQ clients must reject them via
    {!Stmt.mixed_locations}. *)

val of_stmt : ?values:Value.t list -> Stmt.t -> t

val values_with_undef : t -> Value.t list
(** The range of memories and environment-provided values: the defined
    values plus [undef]. *)

val na_set : t -> Loc.Set.t

val subsets : Loc.t list -> Loc.Set.t list
(** All subsets (exponential — footprints stay small). *)

val assignments : Loc.t list -> Value.t list -> Value.t Loc.Map.t list
(** All total assignments of the given values to the given locations. *)

val memories : t -> Value.t Loc.Map.t list
(** All memories [M : Loc_na → Val] over the domain. *)

val supersets : t -> Loc.Set.t -> Loc.Set.t list
(** Supersets of a permission set within the domain (acquire gains). *)

val subsets_of : t -> Loc.Set.t -> Loc.Set.t list
(** Subsets of a permission set (release drops). *)

val acquire_choices : t -> Loc.Set.t -> (Loc.Set.t * Value.t Loc.Map.t) list
(** All acquire instantiations from a permission set: the post set paired
    with the assignment of environment-provided values to the gained
    locations.  The canonical enumeration (content {e and} order) that both
    the uncached SEQ transitions and the packed per-mask caches
    ({!Packed.acquire_choices}) share. *)

val pp : Format.formatter -> t -> unit
