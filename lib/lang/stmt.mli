(** Abstract syntax of the WHILE language (§4).

    Shared-memory accesses are explicit and carry an access mode;
    [Choose]/[Freeze] expose the non-deterministic choices the paper
    records as [choose(v)] transitions (Remark 3); [Print] is the system
    call used for observable behaviors; [Abort] is explicit UB. *)

type t =
  | Skip
  | Assign of Reg.t * Expr.t
  | Load of Reg.t * Mode.read * Loc.t
  | Store of Mode.write * Loc.t * Expr.t
  | Cas of Reg.t * Loc.t * Expr.t * Expr.t
      (** [r := CAS(x, e_expected, e_new)]: acquire-release update; [r] is
          1 on success, 0 on failure (a failed CAS is an acquire read). *)
  | Fadd of Reg.t * Loc.t * Expr.t
      (** [r := FADD(x, e)]: acquire-release fetch-and-add; [r] gets the
          old value. *)
  | Fence of Mode.fence
  | Seq of t * t
  | If of Expr.t * t * t
  | While of Expr.t * t
  | Choose of Reg.t  (** [r := choose()]: any defined value *)
  | Freeze of Reg.t * Expr.t
      (** [r := freeze(e)]: identity on defined values; resolves [undef]
          to an arbitrary defined value *)
  | Print of Expr.t
  | Abort
  | Return of Expr.t

(** Smart sequencing ([Skip] is a unit). *)
val seq : t -> t -> t

val seq_list : t list -> t

(** Canonical form: sequences right-nested with no interior [Skip],
    negated constants folded.  [normalize] is the identity on parser
    output, and printing a normalized statement re-parses to an equal AST
    (same [Fingerprint]) — the contract reproducer files rely on. *)
val normalize : t -> t

(** Structural instruction count. *)
val size : t -> int

(** Apply a location renaming everywhere (modes, registers, expressions
    untouched).  A renaming [pi] with
    [normalize (rename_locs pi s) = normalize s] is a syntactic
    automorphism of [s] — the symmetry pass explores one representative
    per orbit of such renamings. *)
val rename_locs : (Loc.t -> Loc.t) -> t -> t

(** Static footprint: locations accessed non-atomically / atomically, and
    the registers occurring. *)
type footprint = {
  na : Loc.Set.t;
  at : Loc.Set.t;
  regs : Reg.Set.t;
}

val empty_footprint : footprint
val footprint : t -> footprint

(** Locations accessed both atomically and non-atomically — forbidden in
    SEQ (§2, footnote 3), allowed in PS_na. *)
val mixed_locations : t -> Loc.Set.t

(** A register not occurring in the statement, derived from [base]. *)
val fresh_reg : t -> string -> Reg.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
