(** Recursive-descent parser for WHILE programs and multi-thread litmus
    programs (threads separated by [|||]).

    Grammar sketch:
    {v
      program  ::= stmts ( "|||" stmts )*
      stmts    ::= stmt ( ";" stmt )*          (trailing ";" allowed)
      stmt     ::= "skip" | "abort" | "return" exp | "print" "(" exp ")"
                 | "fence" "(" mode ")"
                 | "if" exp "{" stmts "}" ( "else" "{" stmts "}" )?
                 | "while" exp "{" stmts "}"
                 | ident "." "store" "(" mode "," exp ")"
                 | ident "=" rhs
      rhs      ::= "choose" "(" ")" | "freeze" "(" exp ")"
                 | "cas" "(" ident "," exp "," exp ")"
                 | "fadd" "(" ident "," exp ")"
                 | ident "." "load" "(" mode ")"
                 | exp
      exp      ::= usual precedence: || < && < comparisons < + - < * / % < unary
    v} *)

exception Error of string

type stream = { mutable toks : Lexer.located list }

let fail_at (t : Lexer.located) msg =
  raise (Error (Printf.sprintf "%d:%d: %s" t.Lexer.line t.Lexer.col msg))

let peek st =
  match st.toks with
  | [] -> raise (Error "unexpected end of token stream")
  | t :: _ -> t

let advance st =
  match st.toks with
  | [] -> ()
  | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let eat_punct st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.PUNCT p when p = s -> ()
  | _ -> fail_at t (Printf.sprintf "expected %S" s)

let eat_kw st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.KW k when k = s -> ()
  | _ -> fail_at t (Printf.sprintf "expected keyword %S" s)

let try_punct st s =
  match (peek st).Lexer.tok with
  | Lexer.PUNCT p when p = s ->
    advance st;
    true
  | _ -> false

let ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> s
  | _ -> fail_at t "expected identifier"

let mode_name st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> s
  | _ -> fail_at t "expected access mode (na/rlx/acq/rel/acqrel)"

let read_mode st =
  let t = peek st in
  let s = mode_name st in
  match Mode.read_of_string s with
  | Some m -> m
  | None -> fail_at t (Printf.sprintf "invalid read mode %S" s)

let write_mode st =
  let t = peek st in
  let s = mode_name st in
  match Mode.write_of_string s with
  | Some m -> m
  | None -> fail_at t (Printf.sprintf "invalid write mode %S" s)

let fence_mode st =
  let t = peek st in
  let s = mode_name st in
  match Mode.fence_of_string s with
  | Some m -> m
  | None -> fail_at t (Printf.sprintf "invalid fence mode %S" s)

(* --- expressions, precedence climbing --- *)

let rec parse_exp st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match (peek st).Lexer.tok with
  | Lexer.OP "||" ->
    advance st;
    Expr.Binop (Expr.Or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match (peek st).Lexer.tok with
  | Lexer.OP "&&" ->
    advance st;
    Expr.Binop (Expr.And, lhs, parse_and st)
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_add st in
  match (peek st).Lexer.tok with
  | Lexer.OP (("==" | "!=" | "<" | "<=" | ">" | ">=") as op) ->
    advance st;
    let rhs = parse_add st in
    let o =
      match op with
      | "==" -> Expr.Eq
      | "!=" -> Expr.Ne
      | "<" -> Expr.Lt
      | "<=" -> Expr.Le
      | ">" -> Expr.Gt
      | _ -> Expr.Ge
    in
    Expr.Binop (o, lhs, rhs)
  | _ -> lhs

and parse_add st =
  let rec loop lhs =
    match (peek st).Lexer.tok with
    | Lexer.OP (("+" | "-") as op) ->
      advance st;
      let rhs = parse_mul st in
      loop (Expr.Binop ((if op = "+" then Expr.Add else Expr.Sub), lhs, rhs))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match (peek st).Lexer.tok with
    | Lexer.OP (("*" | "/" | "%") as op) ->
      advance st;
      let rhs = parse_unary st in
      let o = match op with "*" -> Expr.Mul | "/" -> Expr.Div | _ -> Expr.Mod in
      loop (Expr.Binop (o, lhs, rhs))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match (peek st).Lexer.tok with
  | Lexer.OP "-" ->
    advance st;
    Expr.neg (parse_unary st)
  | Lexer.OP "!" ->
    advance st;
    Expr.Unop (Expr.Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT n -> Expr.int n
  | Lexer.KW "undef" -> Expr.undef
  | Lexer.IDENT r -> Expr.reg (Reg.make r)
  | Lexer.PUNCT "(" ->
    let e = parse_exp st in
    eat_punct st ")";
    e
  | _ -> fail_at t "expected expression"

(* --- statements --- *)

let rec parse_stmts st : Stmt.t =
  let rec loop acc =
    match (peek st).Lexer.tok with
    | Lexer.PUNCT "}" | Lexer.PUNCT "|||" | Lexer.EOF -> Stmt.seq_list (List.rev acc)
    | Lexer.PUNCT ";" ->
      advance st;
      loop acc
    | _ ->
      let s = parse_stmt st in
      loop (s :: acc)
  in
  loop []

and parse_block st =
  eat_punct st "{";
  let s = parse_stmts st in
  eat_punct st "}";
  s

and parse_stmt st : Stmt.t =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW "skip" ->
    advance st;
    Stmt.Skip
  | Lexer.KW "abort" ->
    advance st;
    Stmt.Abort
  | Lexer.KW "return" ->
    advance st;
    Stmt.Return (parse_exp st)
  | Lexer.KW "print" ->
    advance st;
    eat_punct st "(";
    let e = parse_exp st in
    eat_punct st ")";
    Stmt.Print e
  | Lexer.KW "fence" ->
    advance st;
    eat_punct st "(";
    let m = fence_mode st in
    eat_punct st ")";
    Stmt.Fence m
  | Lexer.KW "if" ->
    advance st;
    let e = parse_exp st in
    let then_ = parse_block st in
    let else_ =
      match (peek st).Lexer.tok with
      | Lexer.KW "else" ->
        advance st;
        parse_block st
      | _ -> Stmt.Skip
    in
    Stmt.If (e, then_, else_)
  | Lexer.KW "while" ->
    advance st;
    let e = parse_exp st in
    let body = parse_block st in
    Stmt.While (e, body)
  | Lexer.IDENT name ->
    advance st;
    (match (peek st).Lexer.tok with
     | Lexer.PUNCT "." ->
       advance st;
       eat_kw st "store";
       eat_punct st "(";
       let m = write_mode st in
       eat_punct st ",";
       let e = parse_exp st in
       eat_punct st ")";
       Stmt.Store (m, Loc.make name, e)
     | Lexer.PUNCT "=" ->
       advance st;
       parse_rhs st (Reg.make name)
     | _ -> fail_at (peek st) "expected '=' or '.store(...)' after identifier")
  | _ -> fail_at t "expected statement"

and parse_rhs st (r : Reg.t) : Stmt.t =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.KW "choose" ->
    advance st;
    eat_punct st "(";
    eat_punct st ")";
    Stmt.Choose r
  | Lexer.KW "freeze" ->
    advance st;
    eat_punct st "(";
    let e = parse_exp st in
    eat_punct st ")";
    Stmt.Freeze (r, e)
  | Lexer.KW "cas" ->
    advance st;
    eat_punct st "(";
    let x = ident st in
    eat_punct st ",";
    let e1 = parse_exp st in
    eat_punct st ",";
    let e2 = parse_exp st in
    eat_punct st ")";
    Stmt.Cas (r, Loc.make x, e1, e2)
  | Lexer.KW "fadd" ->
    advance st;
    eat_punct st "(";
    let x = ident st in
    eat_punct st ",";
    let e = parse_exp st in
    eat_punct st ")";
    Stmt.Fadd (r, Loc.make x, e)
  | Lexer.IDENT name ->
    (* could be "x.load(m)" or an expression starting with a register *)
    (match st.toks with
     | _ :: { Lexer.tok = Lexer.PUNCT "."; _ } :: _ ->
       advance st;
       eat_punct st ".";
       eat_kw st "load";
       eat_punct st "(";
       let m = read_mode st in
       eat_punct st ")";
       Stmt.Load (r, m, Loc.make name)
     | _ -> Stmt.Assign (r, parse_exp st))
  | _ -> Stmt.Assign (r, parse_exp st)

(** Parse a single-thread program. *)
let stmt_of_string (src : string) : Stmt.t =
  let st = { toks = Lexer.tokenize src } in
  let s = parse_stmts st in
  (match (peek st).Lexer.tok with
   | Lexer.EOF -> ()
   | _ -> fail_at (peek st) "trailing input");
  s

(** Parse a multi-thread litmus program: threads separated by [|||]. *)
let threads_of_string (src : string) : Stmt.t list =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    let s = parse_stmts st in
    match (peek st).Lexer.tok with
    | Lexer.PUNCT "|||" ->
      advance st;
      loop (s :: acc)
    | Lexer.EOF -> List.rev (s :: acc)
    | _ -> fail_at (peek st) "trailing input"
  in
  loop []
