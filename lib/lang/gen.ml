(** Random WHILE-program generation, for property-based tests (QCheck) and
    benchmark workloads.

    Generated programs respect the SEQ well-formedness constraint: the
    non-atomic and atomic location pools are disjoint. *)

type config = {
  na_locs : Loc.t list;
  at_locs : Loc.t list;
  regs : Reg.t list;
  values : int list;
  allow_loops : bool;
  allow_atomics : bool;
  allow_rmw : bool;
  allow_abort : bool;
  max_depth : int;
  (* Weight knobs (campaign phases).  A weight [w] replicates the
     corresponding instruction choices [w] times in the pick list; with
     every weight at 1 the list is exactly the historical one, and
     [size_jitter = 0] draws nothing extra, so old seeds generate
     byte-identical programs (pinned by test_fuzz's golden seeds). *)
  w_plain : int;  (* thread-local instructions (assign/freeze/print) *)
  w_na_load : int;  (* non-atomic loads *)
  w_na_store : int;  (* non-atomic stores *)
  w_mode_rlx : int;  (* relaxed atomic loads/stores *)
  w_mode_strong : int;  (* acquire loads / release stores *)
  w_rmw : int;  (* CAS / FADD *)
  size_jitter : int;  (* +/- jitter on [gen_program]'s size *)
}

let default_config =
  {
    na_locs = [ Loc.make "X"; Loc.make "W" ];
    at_locs = [ Loc.make "Y" ];
    regs = [ Reg.make "a"; Reg.make "b"; Reg.make "c" ];
    values = [ 0; 1; 2 ];
    allow_loops = false;
    allow_atomics = true;
    allow_rmw = false;
    allow_abort = false;
    max_depth = 3;
    w_plain = 1;
    w_na_load = 1;
    w_na_store = 1;
    w_mode_rlx = 1;
    w_mode_strong = 1;
    w_rmw = 1;
    size_jitter = 0;
  }

(* Replicate each entry in place ([w = 1] is the identity, [w <= 0]
   drops the entries), preserving the historical list order. *)
let rep w l = if w = 1 then l else List.concat_map (fun f -> List.init (max 0 w) (fun _ -> f)) l

let oneof (st : Random.State.t) (l : 'a list) =
  List.nth l (Random.State.int st (List.length l))

let gen_expr (cfg : config) (st : Random.State.t) ~depth : Expr.t =
  let rec go depth =
    if depth = 0 || Random.State.int st 3 = 0 then
      if Random.State.bool st then Expr.int (oneof st cfg.values)
      else Expr.reg (oneof st cfg.regs)
    else
      match Random.State.int st 6 with
      | 0 -> Expr.Binop (Expr.Add, go (depth - 1), go (depth - 1))
      | 1 -> Expr.Binop (Expr.Sub, go (depth - 1), go (depth - 1))
      | 2 -> Expr.Binop (Expr.Eq, go (depth - 1), go (depth - 1))
      | 3 -> Expr.Binop (Expr.Lt, go (depth - 1), go (depth - 1))
      | 4 -> Expr.Binop (Expr.Mul, go (depth - 1), go (depth - 1))
      | _ -> Expr.Unop (Expr.Not, go (depth - 1))
  in
  go depth

(** A random statement of roughly [size] instructions. *)
let rec gen_stmt (cfg : config) (st : Random.State.t) ~size : Stmt.t =
  if size <= 0 then Stmt.Skip
  else if size = 1 then gen_instr cfg st
  else
    match Random.State.int st 10 with
    | 0 | 1 ->
      let k = 1 + Random.State.int st (size - 1) in
      Stmt.seq (gen_stmt cfg st ~size:k) (gen_stmt cfg st ~size:(size - k))
    | 2 ->
      let e = gen_expr cfg st ~depth:1 in
      let k = size / 2 in
      Stmt.If (e, gen_stmt cfg st ~size:k, gen_stmt cfg st ~size:(size - 1 - k))
    | 3 when cfg.allow_loops ->
      (* bounded counting loops only, so explorations terminate *)
      let i = oneof st cfg.regs in
      let n = 1 + Random.State.int st 2 in
      let body = gen_stmt cfg st ~size:(size - 2) in
      Stmt.seq
        (Stmt.Assign (i, Expr.int 0))
        (Stmt.While
           ( Expr.Binop (Expr.Lt, Expr.reg i, Expr.int n),
             Stmt.seq body (Stmt.Assign (i, Expr.Binop (Expr.Add, Expr.reg i, Expr.int 1))) ))
    | _ ->
      Stmt.seq (gen_instr cfg st) (gen_stmt cfg st ~size:(size - 1))

and gen_instr (cfg : config) (st : Random.State.t) : Stmt.t =
  let reg () = oneof st cfg.regs in
  let val_ () = oneof st cfg.values in
  let choices =
    (* the historical six-entry plain group, split so phases can weight
       non-atomic loads/stores independently (all-1s is the identity) *)
    rep cfg.w_plain
      [ (fun () -> Stmt.Assign (reg (), gen_expr cfg st ~depth:2)) ]
    @ rep cfg.w_na_load
        [ (fun () -> Stmt.Load (reg (), Mode.Rna, oneof st cfg.na_locs)) ]
    @ rep cfg.w_na_store
        [
          (fun () -> Stmt.Store (Mode.Wna, oneof st cfg.na_locs, Expr.int (val_ ())));
          (fun () -> Stmt.Store (Mode.Wna, oneof st cfg.na_locs, Expr.reg (reg ())));
        ]
    @ rep cfg.w_plain
        [
          (fun () -> Stmt.Freeze (reg (), gen_expr cfg st ~depth:1));
          (fun () -> Stmt.Print (Expr.reg (reg ())));
        ]
    @ (if cfg.allow_atomics && cfg.at_locs <> [] then
         rep cfg.w_mode_rlx
           [ (fun () -> Stmt.Load (reg (), Mode.Rrlx, oneof st cfg.at_locs)) ]
         @ rep cfg.w_mode_strong
             [ (fun () -> Stmt.Load (reg (), Mode.Racq, oneof st cfg.at_locs)) ]
         @ rep cfg.w_mode_rlx
             [ (fun () ->
                 Stmt.Store (Mode.Wrlx, oneof st cfg.at_locs, Expr.int (val_ ()))) ]
         @ rep cfg.w_mode_strong
             [ (fun () ->
                 Stmt.Store (Mode.Wrel, oneof st cfg.at_locs, Expr.int (val_ ()))) ]
       else [])
    @ (if cfg.allow_rmw && cfg.at_locs <> [] then
         rep cfg.w_rmw
           [
             (fun () ->
               Stmt.Cas (reg (), oneof st cfg.at_locs, Expr.int (val_ ()),
                         Expr.int (val_ ())));
             (fun () -> Stmt.Fadd (reg (), oneof st cfg.at_locs, Expr.int 1));
           ]
       else [])
    @ if cfg.allow_abort then [ (fun () -> Stmt.Abort) ] else []
  in
  (oneof st choices) ()

(** A random whole program: statement closed by an observer return. *)
let gen_program (cfg : config) (st : Random.State.t) ~size : Stmt.t =
  let size =
    if cfg.size_jitter <= 0 then size
    else max 1 (size + Random.State.int st (2 * cfg.size_jitter + 1) - cfg.size_jitter)
  in
  let body = gen_stmt cfg st ~size in
  let obs =
    List.mapi
      (fun i r -> Expr.Binop (Expr.Mul, Expr.int (i + 1), Expr.reg r))
      cfg.regs
  in
  let sum =
    List.fold_left
      (fun acc e -> Expr.Binop (Expr.Add, acc, e))
      (Expr.int 0) obs
  in
  Stmt.seq body (Stmt.Return sum)

(** A straight-line workload of [size] non-atomic/atomic accesses with
    occasional constants — used by benchmark sweeps. *)
let gen_linear (cfg : config) (st : Random.State.t) ~size : Stmt.t =
  let rec go n acc =
    if n = 0 then Stmt.seq_list (List.rev acc)
    else go (n - 1) (gen_instr cfg st :: acc)
  in
  go size []
