(** Abstract syntax of the WHILE language (§4).

    A thread body is a statement.  Shared-memory accesses are explicit
    ([Load]/[Store]/[Cas]/[Fadd]) and carry an access mode; everything else
    is thread-local.  [Choose] and [Freeze] expose the non-deterministic
    choices that the paper records as [choose(v)] transitions (Remark 3);
    [Print] is the system call used for observable behaviors; [Abort] is an
    explicit source of UB. *)

type t =
  | Skip
  | Assign of Reg.t * Expr.t
  | Load of Reg.t * Mode.read * Loc.t
  | Store of Mode.write * Loc.t * Expr.t
  | Cas of Reg.t * Loc.t * Expr.t * Expr.t
      (** [r := CAS(x, e_expected, e_new)]: acquire-release atomic update;
          [r] is 1 on success, 0 on failure (failure is an acquire read). *)
  | Fadd of Reg.t * Loc.t * Expr.t
      (** [r := FADD(x, e)]: acquire-release fetch-and-add; [r] gets the
          old value. *)
  | Fence of Mode.fence
  | Seq of t * t
  | If of Expr.t * t * t
  | While of Expr.t * t
  | Choose of Reg.t  (** [r := choose()]: any defined value. *)
  | Freeze of Reg.t * Expr.t
      (** [r := freeze(e)]: identity on defined values; resolves [undef] to
          an arbitrary defined value (a [choose] transition). *)
  | Print of Expr.t
  | Abort
  | Return of Expr.t

let seq a b =
  match a, b with
  | Skip, s | s, Skip -> s
  | a, b -> Seq (a, b)

let rec seq_list = function
  | [] -> Skip
  | [ s ] -> s
  | s :: rest -> seq s (seq_list rest)

(** Canonical form: [Seq] right-nested with no interior [Skip] (what
    [seq_list] builds and the parser produces) and negated constants
    folded ([Expr.neg]).  Printing a canonical statement and parsing it
    back is the identity up to [Fingerprint]; generators and mutators can
    produce left-nested sequences, so reproducer emission normalizes
    first. *)
let rec normalize s =
  let rec norm_expr (e : Expr.t) : Expr.t =
    match e with
    | Expr.Const _ | Expr.Reg _ -> e
    | Expr.Binop (op, a, b) -> Expr.Binop (op, norm_expr a, norm_expr b)
    | Expr.Unop (Expr.Neg, a) -> Expr.neg (norm_expr a)
    | Expr.Unop (op, a) -> Expr.Unop (op, norm_expr a)
  in
  match s with
  | Skip | Fence _ | Choose _ | Abort -> s
  | Assign (r, e) -> Assign (r, norm_expr e)
  | Load _ -> s
  | Store (m, x, e) -> Store (m, x, norm_expr e)
  | Cas (r, x, e1, e2) -> Cas (r, x, norm_expr e1, norm_expr e2)
  | Fadd (r, x, e) -> Fadd (r, x, norm_expr e)
  | Seq (a, b) ->
    (* Re-associate to the right and drop Skips via the smart [seq]. *)
    let rec flatten s acc =
      match s with
      | Seq (a, b) -> flatten a (flatten b acc)
      | Skip -> acc
      | s -> normalize s :: acc
    in
    seq_list (flatten (Seq (a, b)) [])
  | If (e, a, b) -> If (norm_expr e, normalize a, normalize b)
  | While (e, a) -> While (norm_expr e, normalize a)
  | Freeze (r, e) -> Freeze (r, norm_expr e)
  | Print e -> Print (norm_expr e)
  | Return e -> Return (norm_expr e)

(** Apply a location renaming everywhere (modes, registers, and
    expressions are untouched).  Used by the symmetry pass: a renaming
    [pi] with [normalize (rename_locs pi s) = normalize s] is a syntactic
    automorphism of [s], so environments that differ only by [pi] explore
    isomorphic state spaces. *)
let rec rename_locs f = function
  | (Skip | Assign _ | Fence _ | Choose _ | Freeze _ | Print _ | Abort
    | Return _) as s -> s
  | Load (r, m, x) -> Load (r, m, f x)
  | Store (m, x, e) -> Store (m, f x, e)
  | Cas (r, x, e1, e2) -> Cas (r, f x, e1, e2)
  | Fadd (r, x, e) -> Fadd (r, f x, e)
  | Seq (a, b) -> Seq (rename_locs f a, rename_locs f b)
  | If (e, a, b) -> If (e, rename_locs f a, rename_locs f b)
  | While (e, a) -> While (e, rename_locs f a)

(* Structural size, used by benchmarks and the optimizer report. *)
let rec size = function
  | Skip | Assign _ | Load _ | Store _ | Cas _ | Fadd _ | Fence _ | Choose _
  | Freeze _ | Print _ | Abort | Return _ -> 1
  | Seq (a, b) -> size a + size b
  | If (_, a, b) -> 1 + size a + size b
  | While (_, a) -> 1 + size a

(** Static footprint of a statement: which locations are accessed
    non-atomically, which atomically, and which registers occur. *)
type footprint = {
  na : Loc.Set.t;
  at : Loc.Set.t;
  regs : Reg.Set.t;
}

let empty_footprint =
  { na = Loc.Set.empty; at = Loc.Set.empty; regs = Reg.Set.empty }

let footprint stmt =
  let add_regs fp e = { fp with regs = Reg.Set.union fp.regs (Expr.regs e) } in
  let add_na fp x = { fp with na = Loc.Set.add x fp.na } in
  let add_at fp x = { fp with at = Loc.Set.add x fp.at } in
  let add_reg fp r = { fp with regs = Reg.Set.add r fp.regs } in
  let rec go fp = function
    | Skip | Abort | Fence _ -> fp
    | Assign (r, e) -> add_reg (add_regs fp e) r
    | Load (r, m, x) ->
      let fp = add_reg fp r in
      if Mode.read_is_atomic m then add_at fp x else add_na fp x
    | Store (m, x, e) ->
      let fp = add_regs fp e in
      if Mode.write_is_atomic m then add_at fp x else add_na fp x
    | Cas (r, x, e1, e2) -> add_at (add_reg (add_regs (add_regs fp e1) e2) r) x
    | Fadd (r, x, e) -> add_at (add_reg (add_regs fp e) r) x
    | Seq (a, b) -> go (go fp a) b
    | If (e, a, b) -> go (go (add_regs fp e) a) b
    | While (e, a) -> go (add_regs fp e) a
    | Choose r -> add_reg fp r
    | Freeze (r, e) -> add_reg (add_regs fp e) r
    | Print e -> add_regs fp e
    | Return e -> add_regs fp e
  in
  go empty_footprint stmt

(** Locations accessed both atomically and non-atomically.  SEQ forbids
    such mixing (§2, footnote 3); PS_na allows it. *)
let mixed_locations stmt =
  let fp = footprint stmt in
  Loc.Set.inter fp.na fp.at

let fresh_reg stmt base =
  let fp = footprint stmt in
  let rec go i =
    let candidate = Reg.make (Printf.sprintf "%s%d" base i) in
    if Reg.Set.mem candidate fp.regs then go (i + 1) else candidate
  in
  let base_reg = Reg.make base in
  if Reg.Set.mem base_reg fp.regs then go 0 else base_reg

let rec pp ppf = function
  | Skip -> Fmt.string ppf "skip"
  | Assign (r, e) -> Fmt.pf ppf "%a = %a" Reg.pp r Expr.pp e
  | Load (r, m, x) -> Fmt.pf ppf "%a = %a.load(%a)" Reg.pp r Loc.pp x Mode.pp_read m
  | Store (m, x, e) -> Fmt.pf ppf "%a.store(%a, %a)" Loc.pp x Mode.pp_write m Expr.pp e
  | Cas (r, x, e1, e2) ->
    Fmt.pf ppf "%a = cas(%a, %a, %a)" Reg.pp r Loc.pp x Expr.pp e1 Expr.pp e2
  | Fadd (r, x, e) -> Fmt.pf ppf "%a = fadd(%a, %a)" Reg.pp r Loc.pp x Expr.pp e
  | Fence m -> Fmt.pf ppf "fence(%a)" Mode.pp_fence m
  | Seq (a, b) -> Fmt.pf ppf "%a;@ %a" pp a pp b
  | If (e, a, Skip) -> Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ }" Expr.pp e pp a
  | If (e, a, b) ->
    Fmt.pf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }" Expr.pp e pp a pp b
  | While (e, a) -> Fmt.pf ppf "@[<v 2>while %a {@ %a@]@ }" Expr.pp e pp a
  | Choose r -> Fmt.pf ppf "%a = choose()" Reg.pp r
  | Freeze (r, e) -> Fmt.pf ppf "%a = freeze(%a)" Reg.pp r Expr.pp e
  | Print e -> Fmt.pf ppf "print(%a)" Expr.pp e
  | Abort -> Fmt.string ppf "abort"
  | Return e -> Fmt.pf ppf "return %a" Expr.pp e

let to_string s = Fmt.str "@[<v>%a@]" pp s
