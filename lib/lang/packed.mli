(** Packed representation of a finite location domain: bitmask location
    sets, interned memories, and cached environment-choice tables.

    One [Packed.t] belongs to one {!Domain.t} and (like
    [Promising.Machine.memo]) must never be shared across domains.  The
    cached acquire/release lists are obtained by calling
    {!Domain.acquire_choices} / {!Domain.subsets_of} on first use and
    replaying the result thereafter, so packed enumeration is
    order-identical to the set-based one (see test/test_diffcore.ml). *)

type t

exception Unpackable
(** Raised when a location, value, or memory lies outside the packed
    universe, or when the domain exceeds {!max_locs} non-atomic
    locations.  Callers fall back to the set-based path. *)

val max_locs : int
(** Upper bound on packable non-atomic footprints (mask tables are
    [2^n]). *)

val make : Domain.t -> t
(** Build the tables for a domain.  @raise Unpackable if the domain has
    more than {!max_locs} non-atomic locations. *)

val domain : t -> Domain.t
val nlocs : t -> int

val full_mask : t -> int
(** Mask of the whole non-atomic footprint, [2^nlocs - 1]. *)

val mask_of_set : t -> Loc.Set.t -> int
(** @raise Unpackable if the set contains a location outside the
    domain's non-atomic footprint. *)

val set_of_mask : t -> int -> Loc.Set.t
(** O(1) table lookup; total on [0 .. full_mask]. *)

val value_id : t -> Value.t -> int
(** Ids are [>= 1]; id [0] is reserved for "absent binding" in packed
    memories.  Total: values outside [Domain.values_with_undef] (programs
    can compute and store them) are interned on first sight. *)

val value_of_id : t -> int -> Value.t
(** Inverse of {!value_id} on ids [>= 1]. *)

val pack_mem : t -> Value.t Loc.Map.t -> int
(** Intern a (partial) memory; equal memories get equal ids, and a
    location absent from the map is distinguished from any present
    binding.  @raise Unpackable on foreign locations. *)

val mem_of_id : t -> int -> Value.t Loc.Map.t
val mem_count : t -> int

val acquire_choices : t -> int -> (Loc.Set.t * Value.t Loc.Map.t) list
(** [acquire_choices t pmask] = [Domain.acquire_choices (domain t) p]
    for [p = set_of_mask t pmask], cached per mask. *)

val release_choices : t -> int -> Loc.Set.t list
(** [release_choices t pmask] = [Domain.subsets_of (domain t) p], cached
    per mask. *)

val submasks : int -> int list
(** All submasks of a mask, including [0] and the mask itself
    (test helper). *)
