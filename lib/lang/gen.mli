(** Random WHILE-program generation for property-based tests and benchmark
    workloads.  Generated programs keep the non-atomic and atomic location
    pools disjoint (SEQ well-formedness). *)

type config = {
  na_locs : Loc.t list;
  at_locs : Loc.t list;
  regs : Reg.t list;
  values : int list;
  allow_loops : bool;  (** bounded counting loops only *)
  allow_atomics : bool;
  allow_rmw : bool;
  allow_abort : bool;
  max_depth : int;
  w_plain : int;  (** weight of thread-local instructions (assign/freeze/print) *)
  w_na_load : int;  (** weight of non-atomic loads *)
  w_na_store : int;  (** weight of non-atomic stores *)
  w_mode_rlx : int;  (** weight of relaxed atomic loads/stores *)
  w_mode_strong : int;  (** weight of acquire loads / release stores *)
  w_rmw : int;  (** weight of CAS/FADD (with [allow_rmw]) *)
  size_jitter : int;  (** +/- jitter on [gen_program]'s size; 0 = none *)
}

(** All weights 1, no jitter: seeds drawn against older versions of this
    module generate byte-identical programs (golden-pinned in the test
    suite). *)
val default_config : config

val gen_expr : config -> Random.State.t -> depth:int -> Expr.t

(** A random statement of roughly [size] instructions. *)
val gen_stmt : config -> Random.State.t -> size:int -> Stmt.t

val gen_instr : config -> Random.State.t -> Stmt.t

(** A random whole program, closed by an observer [return] mixing all
    registers. *)
val gen_program : config -> Random.State.t -> size:int -> Stmt.t

(** A straight-line workload of [size] instructions (benchmark sweeps). *)
val gen_linear : config -> Random.State.t -> size:int -> Stmt.t
