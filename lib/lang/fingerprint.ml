(** Content fingerprints of programs and check parameters (see .mli).

    The rendering is a prefix encoding: every constructor emits a short
    tag, every symbol/string field is emitted length-prefixed, so the
    encoding is injective and independent of [Format] state.  Nothing
    here depends on hash-table iteration order or physical identity. *)

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_value buf = function
  | Value.Int n ->
    Buffer.add_char buf 'i';
    Buffer.add_string buf (string_of_int n)
  | Value.Undef -> Buffer.add_char buf 'u'

let add_binop buf (op : Expr.binop) =
  Buffer.add_string buf
    (match op with
     | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Mul -> "*" | Expr.Div -> "/"
     | Expr.Mod -> "%" | Expr.Eq -> "==" | Expr.Ne -> "!=" | Expr.Lt -> "<"
     | Expr.Le -> "<=" | Expr.Gt -> ">" | Expr.Ge -> ">=" | Expr.And -> "&&"
     | Expr.Or -> "||")

let rec add_expr buf = function
  | Expr.Const v ->
    Buffer.add_char buf 'C';
    add_value buf v
  | Expr.Reg r ->
    Buffer.add_char buf 'R';
    add_str buf (Reg.name r)
  | Expr.Binop (op, a, b) ->
    Buffer.add_char buf 'B';
    add_binop buf op;
    add_expr buf a;
    add_expr buf b
  | Expr.Unop (op, a) ->
    Buffer.add_char buf 'U';
    Buffer.add_char buf (match op with Expr.Neg -> '-' | Expr.Not -> '!');
    add_expr buf a

let add_rmode buf (m : Mode.read) =
  Buffer.add_char buf
    (match m with Mode.Rna -> 'n' | Mode.Rrlx -> 'r' | Mode.Racq -> 'a')

let add_wmode buf (m : Mode.write) =
  Buffer.add_char buf
    (match m with Mode.Wna -> 'n' | Mode.Wrlx -> 'r' | Mode.Wrel -> 'l')

let add_fmode buf (m : Mode.fence) =
  Buffer.add_char buf
    (match m with
     | Mode.Facq -> 'a' | Mode.Frel -> 'r' | Mode.Facqrel -> 'b'
     | Mode.Fsc -> 's')

let rec add_stmt buf = function
  | Stmt.Skip -> Buffer.add_char buf 'k'
  | Stmt.Assign (r, e) ->
    Buffer.add_char buf '=';
    add_str buf (Reg.name r);
    add_expr buf e
  | Stmt.Load (r, m, x) ->
    Buffer.add_char buf 'L';
    add_rmode buf m;
    add_str buf (Reg.name r);
    add_str buf (Loc.name x)
  | Stmt.Store (m, x, e) ->
    Buffer.add_char buf 'S';
    add_wmode buf m;
    add_str buf (Loc.name x);
    add_expr buf e
  | Stmt.Cas (r, x, e1, e2) ->
    Buffer.add_char buf 'X';
    add_str buf (Reg.name r);
    add_str buf (Loc.name x);
    add_expr buf e1;
    add_expr buf e2
  | Stmt.Fadd (r, x, e) ->
    Buffer.add_char buf 'A';
    add_str buf (Reg.name r);
    add_str buf (Loc.name x);
    add_expr buf e
  | Stmt.Fence m ->
    Buffer.add_char buf 'F';
    add_fmode buf m
  | Stmt.Seq (a, b) ->
    Buffer.add_char buf ';';
    add_stmt buf a;
    add_stmt buf b
  | Stmt.If (e, a, b) ->
    Buffer.add_char buf '?';
    add_expr buf e;
    add_stmt buf a;
    add_stmt buf b
  | Stmt.While (e, a) ->
    Buffer.add_char buf 'W';
    add_expr buf e;
    add_stmt buf a
  | Stmt.Choose r ->
    Buffer.add_char buf 'c';
    add_str buf (Reg.name r)
  | Stmt.Freeze (r, e) ->
    Buffer.add_char buf 'z';
    add_str buf (Reg.name r);
    add_expr buf e
  | Stmt.Print e ->
    Buffer.add_char buf 'p';
    add_expr buf e
  | Stmt.Abort -> Buffer.add_char buf '!'
  | Stmt.Return e ->
    Buffer.add_char buf 'r';
    add_expr buf e

let canonical_stmt s =
  let buf = Buffer.create 256 in
  add_stmt buf s;
  Buffer.contents buf

let canonical_threads ts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int (List.length ts));
  List.iter (fun t -> add_str buf (canonical_stmt t)) ts;
  Buffer.contents buf

let canonical_values vs =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (string_of_int (List.length vs));
  List.iter (fun v -> Buffer.add_char buf ','; add_value buf v) vs;
  Buffer.contents buf

let digest_hex s = Digest.to_hex (Digest.string s)

let stmt s = digest_hex (canonical_stmt s)
let threads ts = digest_hex (canonical_threads ts)

let key parts =
  let buf = Buffer.create 128 in
  List.iter (fun p -> add_str buf p) parts;
  digest_hex (Buffer.contents buf)
