(** Pure expressions over registers.

    Expression evaluation can fault (division by zero or by [undef] is UB,
    matching the paper's "error state ⊥, e.g. when dividing by 0").  All
    other operators propagate [undef] (LLVM-style poison-free [undef]
    semantics: any use of an undefined operand yields an undefined
    result). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type t =
  | Const of Value.t
  | Reg of Reg.t
  | Binop of binop * t * t
  | Unop of unop * t

let int n = Const (Value.Int n)
let undef = Const Value.Undef
let reg r = Reg r

(* Negation folded on constants.  The lexer has no negative literals
   ([-1] lexes as [OP "-"; INT 1]), so a printed [Const (Int (-1))] comes
   back from the parser as a negated positive constant; folding here makes
   print-then-parse preserve canonical ASTs (Fingerprint round-trips). *)
let neg = function
  | Const (Value.Int n) -> Const (Value.Int (-n))
  | Const Value.Undef -> Const Value.Undef
  | e -> Unop (Neg, e)

let rec regs_of acc = function
  | Const _ -> acc
  | Reg r -> Reg.Set.add r acc
  | Binop (_, a, b) -> regs_of (regs_of acc a) b
  | Unop (_, a) -> regs_of acc a

let regs e = regs_of Reg.Set.empty e

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Reg x, Reg y -> Reg.equal x y
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && equal a1 a2
  | (Const _ | Reg _ | Binop _ | Unop _), _ -> false

type eval_result =
  | Ok of Value.t
  | Fault  (* immediate UB, e.g. division by zero *)

let apply_binop op x y : eval_result =
  match op, x, y with
  | Div, _, Value.Int 0 | Mod, _, Value.Int 0 -> Fault
  | (Div | Mod), _, Value.Undef -> Fault
  | _, Value.Undef, _ | _, _, Value.Undef -> Ok Value.Undef
  | _, Value.Int a, Value.Int b ->
    let bool b = Value.of_bool b in
    Ok
      (match op with
       | Add -> Value.Int (a + b)
       | Sub -> Value.Int (a - b)
       | Mul -> Value.Int (a * b)
       | Div -> Value.Int (a / b)
       | Mod -> Value.Int (a mod b)
       | Eq -> bool (a = b)
       | Ne -> bool (a <> b)
       | Lt -> bool (a < b)
       | Le -> bool (a <= b)
       | Gt -> bool (a > b)
       | Ge -> bool (a >= b)
       | And -> bool (a <> 0 && b <> 0)
       | Or -> bool (a <> 0 || b <> 0))

let apply_unop op x : eval_result =
  match op, x with
  | _, Value.Undef -> Ok Value.Undef
  | Neg, Value.Int a -> Ok (Value.Int (-a))
  | Not, Value.Int a -> Ok (Value.of_bool (a = 0))

(* Registers that were never assigned read as 0, like zero-initialised
   locals; this keeps whole-program refinement insensitive to the initial
   register file, matching the paper's "with some initial register file". *)
let rec eval (rf : Value.t Reg.Map.t) (e : t) : eval_result =
  match e with
  | Const v -> Ok v
  | Reg r -> Ok (Reg.Map.find_default ~default:Value.zero r rf)
  | Binop (op, a, b) ->
    (match eval rf a with
     | Fault -> Fault
     | Ok va ->
       (match eval rf b with
        | Fault -> Fault
        | Ok vb -> apply_binop op va vb))
  | Unop (op, a) ->
    (match eval rf a with
     | Fault -> Fault
     | Ok va -> apply_unop op va)

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
     | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
     | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">"
     | Ge -> ">=" | And -> "&&" | Or -> "||")

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Reg r -> Reg.pp ppf r
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a pp_binop op pp b
  | Unop (Neg, a) -> Fmt.pf ppf "(-%a)" pp a
  | Unop (Not, a) -> Fmt.pf ppf "(!%a)" pp a
