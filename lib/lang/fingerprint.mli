(** Content fingerprints of programs and check parameters.

    The SEQ verdicts are pure functions of (program pair, check
    parameters), which makes them ideal cache keys — provided the key is
    computed over a {e canonical} rendering that two structurally equal
    ASTs always share.  The pretty-printer is not that rendering: its
    output depends on [Format] margins and boxing.  This module renders
    statements into an unambiguous prefix form built with [Buffer]
    (margin-free, whitespace-free) and digests it with the stdlib MD5.

    Fingerprints are stable within one store format version; the cache
    layer ({!Service.Cache}) carries its own format version on top, so a
    rendering change here only costs cold entries, never wrong hits. *)

(** Canonical, margin-independent rendering of a statement.  Structurally
    equal statements render identically; distinct statements render
    distinctly (injective: every constructor is tagged and every variable
    -length field is length-prefixed). *)
val canonical_stmt : Stmt.t -> string

(** Canonical rendering of a thread list (order-sensitive). *)
val canonical_threads : Stmt.t list -> string

(** MD5 of an arbitrary string, in lowercase hex (32 chars). *)
val digest_hex : string -> string

(** [stmt s] = [digest_hex (canonical_stmt s)]. *)
val stmt : Stmt.t -> string

(** [threads ts] = [digest_hex (canonical_threads ts)]. *)
val threads : Stmt.t list -> string

(** Digest a key assembled from parts: parts are length-prefixed before
    hashing, so [key ["ab";"c"]] and [key ["a";"bc"]] differ. *)
val key : string list -> string

(** Canonical rendering of a value list (for domain fingerprints). *)
val canonical_values : Value.t list -> string
