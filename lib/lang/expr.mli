(** Pure expressions over registers.

    Division/modulo by zero or by [undef] is immediate UB (the paper's
    "error state ⊥, e.g. when dividing by 0"); every other operator
    propagates [undef]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type t =
  | Const of Value.t
  | Reg of Reg.t
  | Binop of binop * t * t
  | Unop of unop * t

val int : int -> t
val undef : t
val reg : Reg.t -> t

(** Negation with constant folding: [neg (Const (Int n))] is
    [Const (Int (-n))] (and [undef] stays [undef]), so printing a negative
    constant and re-parsing it yields the same AST. *)
val neg : t -> t

(** Registers occurring in the expression. *)
val regs : t -> Reg.Set.t

val equal : t -> t -> bool

type eval_result =
  | Ok of Value.t
  | Fault  (** immediate UB *)

val apply_binop : binop -> Value.t -> Value.t -> eval_result
val apply_unop : unop -> Value.t -> eval_result

(** Evaluate under a register file; unset registers read as 0. *)
val eval : Value.t Reg.Map.t -> t -> eval_result

val pp_binop : Format.formatter -> binop -> unit
val pp : Format.formatter -> t -> unit
