(** Packed representation of a finite location domain.

    The SEQ checkers spend almost all of their time enumerating
    environment moves over the non-atomic footprint: permission sets
    and memories built from polymorphic [Loc.Set] / [Loc.Map] values,
    rebuilt from scratch at every configuration.  Over a fixed
    {!Domain.t} the footprint is tiny and static, so all of those
    structures embed into machine integers:

    - a permission/written set becomes a bitmask over the (sorted)
      non-atomic locations, with [Loc.Set] values for every mask
      precomputed in a [2^n] table;
    - a memory becomes an interned id: the per-location value ids are
      packed into an int array and hash-consed, so equality of memories
      is equality of ids;
    - the acquire/release environment-choice lists for each permission
      mask are computed once and cached.

    Fidelity contract: the cached choice lists are {e the very lists}
    returned by {!Domain.acquire_choices} / {!Domain.subsets_of} —
    cached on first use, never re-derived independently — so packed and
    unpacked exploration enumerate identical moves in identical order
    (locked by test/test_diffcore.ml).  Memory interning distinguishes
    an absent binding (value id 0) from a present binding of any value
    (ids >= 1), matching [Loc.Map.compare] on partial memories. *)

exception Unpackable

(* Masks index a [2^n] table, and each memory costs an [n]-element key:
   beyond this many non-atomic locations the tables stop paying for
   themselves and callers should fall back to the set-based path. *)
let max_locs = 16

type t = {
  domain : Domain.t;
  nlocs : int;
  locs : Loc.t array;  (* index -> location, sorted ascending *)
  loc_index : (Loc.t, int) Hashtbl.t;
  full_mask : int;
  sets : Loc.Set.t array;  (* mask -> set, all 2^nlocs *)
  mutable values : Value.t array;  (* (id - 1) -> value; id 0 means "absent" *)
  value_ids : (Value.t, int) Hashtbl.t;
  mutable value_count : int;
  mem_ids : (int array, int) Hashtbl.t;
  mutable mem_rev : Value.t Loc.Map.t array;  (* mem id -> memory *)
  mutable mem_count : int;
  acq_cache : (Loc.Set.t * Value.t Loc.Map.t) list option array;
  rel_cache : Loc.Set.t list option array;
}

let domain t = t.domain
let nlocs t = t.nlocs
let full_mask t = t.full_mask
let mem_count t = t.mem_count

let make (d : Domain.t) : t =
  let locs = Array.of_list d.Domain.na_locs in
  let n = Array.length locs in
  if n > max_locs then raise Unpackable;
  let loc_index = Hashtbl.create (2 * n + 1) in
  Array.iteri (fun i x -> Hashtbl.replace loc_index x i) locs;
  let size = 1 lsl n in
  let sets = Array.make size Loc.Set.empty in
  for m = 1 to size - 1 do
    (* m = m' | lowest-set-bit, and m' < m is already filled *)
    let bit = m land -m in
    let i =
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      log2 bit 0
    in
    sets.(m) <- Loc.Set.add locs.(i) sets.(m lxor bit)
  done;
  let vlist = Domain.values_with_undef d in
  let values = Array.make (max 8 (2 * List.length vlist)) Value.Undef in
  List.iteri (fun i v -> values.(i) <- v) vlist;
  let value_ids = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace value_ids v (i + 1)) vlist;
  {
    domain = d;
    nlocs = n;
    locs;
    loc_index;
    full_mask = size - 1;
    sets;
    values;
    value_ids;
    value_count = List.length vlist;
    mem_ids = Hashtbl.create 256;
    mem_rev = Array.make 16 Loc.Map.empty;
    mem_count = 0;
    acq_cache = Array.make size None;
    rel_cache = Array.make size None;
  }

let loc_index t x =
  match Hashtbl.find_opt t.loc_index x with
  | Some i -> i
  | None -> raise Unpackable

let set_of_mask t m = t.sets.(m)

let mask_of_set t (s : Loc.Set.t) : int =
  Loc.Set.fold (fun x acc -> acc lor (1 lsl loc_index t x)) s 0

(* Memories can hold values the program computed outside the domain
   (e.g. the sum of two domain values written non-atomically), so unseen
   values are interned on the fly — ids are only used for memory
   hashing/equality, never for enumeration, which draws exclusively from
   the domain's own value list. *)
let value_id t v =
  match Hashtbl.find_opt t.value_ids v with
  | Some i -> i
  | None ->
    if t.value_count >= Array.length t.values then begin
      let grown = Array.make (2 * Array.length t.values) Value.Undef in
      Array.blit t.values 0 grown 0 t.value_count;
      t.values <- grown
    end;
    t.values.(t.value_count) <- v;
    t.value_count <- t.value_count + 1;
    Hashtbl.replace t.value_ids v t.value_count;
    t.value_count

let value_of_id t i = t.values.(i - 1)

let intern_mem t (key : int array) (mem : Value.t Loc.Map.t) : int =
  match Hashtbl.find_opt t.mem_ids key with
  | Some id -> id
  | None ->
    let id = t.mem_count in
    if id >= Array.length t.mem_rev then begin
      let grown = Array.make (2 * Array.length t.mem_rev) Loc.Map.empty in
      Array.blit t.mem_rev 0 grown 0 id;
      t.mem_rev <- grown
    end;
    t.mem_rev.(id) <- mem;
    t.mem_count <- id + 1;
    Hashtbl.replace t.mem_ids key id;
    id

let pack_mem t (mem : Value.t Loc.Map.t) : int =
  let key = Array.make t.nlocs 0 in
  Loc.Map.iter (fun x v -> key.(loc_index t x) <- value_id t v) mem;
  intern_mem t key mem

let mem_of_id t id = t.mem_rev.(id)

let acquire_choices t (pmask : int) =
  match t.acq_cache.(pmask) with
  | Some l -> l
  | None ->
    let l = Domain.acquire_choices t.domain t.sets.(pmask) in
    t.acq_cache.(pmask) <- Some l;
    l

let release_choices t (pmask : int) =
  match t.rel_cache.(pmask) with
  | Some l -> l
  | None ->
    let l = Domain.subsets_of t.domain t.sets.(pmask) in
    t.rel_cache.(pmask) <- Some l;
    l

(* All submasks of [m], including 0 and [m] itself (test helper). *)
let submasks (m : int) : int list =
  let rec go s acc =
    let acc = s :: acc in
    if s = 0 then acc else go ((s - 1) land m) acc
  in
  go m []
