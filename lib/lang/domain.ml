(** Finite domains for exhaustive checking.

    The paper's refinement notions quantify over arbitrary values, memories,
    permission sets, and environments.  To decide them for litmus-sized
    programs we restrict the defined values to a small finite set and the
    locations to the program footprint; all quantifiers then range over
    finite sets and bounded-complete enumeration is exact on this domain
    (see DESIGN.md). *)

type t = {
  values : Value.t list;  (** defined values, no [undef] *)
  na_locs : Loc.t list;   (** non-atomic locations, sorted *)
  at_locs : Loc.t list;   (** atomic locations, sorted *)
}

let default_values = [ Value.Int 0; Value.Int 1; Value.Int 2 ]

let make ?(values = default_values) ~na_locs ~at_locs () =
  let sort = List.sort_uniq Loc.compare in
  { values; na_locs = sort na_locs; at_locs = sort at_locs }

(** Build a domain from the footprints of the given statements (all threads
    of a program, or source and target of a transformation).  Locations
    accessed non-atomically anywhere are classified [na]; purely atomic ones
    [at].  Mixed locations are classified [na] here — SEQ clients must
    reject them separately via {!Stmt.mixed_locations}. *)
let of_stmts ?(values = default_values) (stmts : Stmt.t list) =
  let fps = List.map Stmt.footprint stmts in
  let na =
    List.fold_left (fun acc fp -> Loc.Set.union acc fp.Stmt.na) Loc.Set.empty fps
  in
  let at =
    List.fold_left (fun acc fp -> Loc.Set.union acc fp.Stmt.at) Loc.Set.empty fps
  in
  let at = Loc.Set.diff at na in
  make ~values ~na_locs:(Loc.Set.elements na) ~at_locs:(Loc.Set.elements at) ()

let of_stmt ?values s = of_stmts ?values [ s ]

(** All values including [undef] — the range of memories and of
    environment-provided values. *)
let values_with_undef d = Value.Undef :: d.values

let na_set d = Loc.Set.of_list d.na_locs

(** All subsets of a location list (as sets).  Exponential: callers keep
    footprints small. *)
let subsets (locs : Loc.t list) : Loc.Set.t list =
  List.fold_left
    (fun acc x ->
      List.concat_map (fun s -> [ s; Loc.Set.add x s ]) acc)
    [ Loc.Set.empty ] locs

(** All total assignments of the given values to the given locations. *)
let assignments (locs : Loc.t list) (values : Value.t list) :
    Value.t Loc.Map.t list =
  List.fold_left
    (fun acc x ->
      List.concat_map
        (fun m -> List.map (fun v -> Loc.Map.add x v m) values)
        acc)
    [ Loc.Map.empty ] locs

(** All memories [M : Loc_na → Val] over the domain (values include
    [undef]). *)
let memories d = assignments d.na_locs (values_with_undef d)

(** Supersets of [p] within the domain's non-atomic locations (for
    acquire-read permission gains). *)
let supersets d (p : Loc.Set.t) : Loc.Set.t list =
  let gainable = List.filter (fun x -> not (Loc.Set.mem x p)) d.na_locs in
  List.map (fun extra -> Loc.Set.union p extra) (subsets gainable)

(** Subsets of [p] (for release-write permission drops). *)
let subsets_of d (p : Loc.Set.t) : Loc.Set.t list =
  subsets (List.filter (fun x -> Loc.Set.mem x p) d.na_locs)

(** All acquire instantiations from permission set [p]: the post set
    paired with the environment-provided values for the gained locations.
    This is {e the} canonical enumeration (content and order) of the
    acquire choices of Fig 1 — {!Seq_model.Config.moves} and the packed
    caches of {!Packed} both delegate here, so cached and uncached
    enumeration can never drift apart. *)
let acquire_choices d (p : Loc.Set.t) : (Loc.Set.t * Value.t Loc.Map.t) list =
  List.concat_map
    (fun post ->
      let gained = Loc.Set.diff post p in
      List.map
        (fun vnew -> (post, vnew))
        (assignments (Loc.Set.elements gained) (values_with_undef d)))
    (supersets d p)

let pp ppf d =
  Fmt.pf ppf "values=%a na=%a at=%a"
    Fmt.(list ~sep:comma Value.pp) d.values
    Fmt.(list ~sep:comma Loc.pp) d.na_locs
    Fmt.(list ~sep:comma Loc.pp) d.at_locs
