(** PS_na machine states, certification, exhaustive bounded exploration,
    and behavioral refinement (Def 5.2/5.3).

    Machine steps follow Fig 5: a thread takes a step (here: one step at a
    time, with promise/lower steps enumerated separately and bounded) and
    must then {e certify} — running alone, it must be able to fulfill all
    its outstanding promises (reaching ⊥ also empties the promise set, per
    the (fail)/(racy-write) rules).

    Explored states are deduplicated up to order-isomorphism of the
    per-location timestamp orders (timestamp values never matter beyond
    their relative order and attachment structure), which keeps litmus
    explorations finite. *)

open Lang

type state = { threads : Thread.t list; memory : Memory.t }

(** A PS_na behavior: per-thread return value and output (system-call)
    sequence, or ⊥ for a UB run (Def 5.2 + footnote 10). *)
type behavior =
  | Ret of (Value.t * Value.t list) list
  | Bot

let compare_behavior b1 b2 =
  match b1, b2 with
  | Bot, Bot -> 0
  | Bot, Ret _ -> -1
  | Ret _, Bot -> 1
  | Ret l1, Ret l2 ->
    List.compare
      (fun (v1, o1) (v2, o2) ->
        let c = Value.compare v1 v2 in
        if c <> 0 then c else List.compare Value.compare o1 o2)
      l1 l2

module Behavior_set = Set.Make (struct
  type t = behavior
  let compare = compare_behavior
end)

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                     *)
(* ------------------------------------------------------------------ *)

(* Interner for program states: canonical keys would otherwise
   pretty-print the entire remaining program of every thread for every
   explored state, which dominates exploration time. *)
module Prog_map = Map.Make (struct
  type t = Prog.state
  let compare = Prog.compare_state
end)

type interner = { mutable next : int; mutable ids : int Prog_map.t }

let make_interner () = { next = 0; ids = Prog_map.empty }

let intern (i : interner) (p : Prog.state) : int =
  match Prog_map.find_opt p i.ids with
  | Some id -> id
  | None ->
    let id = i.next in
    i.next <- id + 1;
    i.ids <- Prog_map.add p id i.ids;
    id

(* Rank of a timestamp within its location's message list (0 = the init
   message).  Views always point at message timestamps. *)
let canon_key ?interner (s : state) : string =
  let buf = Buffer.create 256 in
  let ranks : (Loc.t * (Time.t * int) list) list =
    Loc.Map.fold
      (fun x ms acc ->
        (x, List.mapi (fun i m -> (m.Message.ts, i)) ms) :: acc)
      s.memory.Memory.msgs []
  in
  let rank x ts =
    match List.assoc_opt x ranks with
    | None -> -1
    | Some l ->
      (match List.find_opt (fun (t, _) -> Time.equal t ts) l with
       | Some (_, i) -> i
       | None -> -2)
  in
  let add_view v =
    Loc.Map.iter
      (fun x t ->
        if not (Time.equal t Time.zero) then
          Buffer.add_string buf (Printf.sprintf "%s@%d;" x (rank x t)))
      v
  in
  let add_msg m =
    Buffer.add_string buf
      (Printf.sprintf "%s@%d%s:" m.Message.loc
         (rank m.Message.loc m.Message.ts)
         (if m.Message.attached then "!" else ""));
    (match m.Message.payload with
     | Message.Reserved -> Buffer.add_string buf "res"
     | Message.Concrete { value; view } ->
       Buffer.add_string buf (Value.to_string value);
       Buffer.add_char buf '[';
       add_view view;
       Buffer.add_char buf ']');
    Buffer.add_char buf ' '
  in
  Loc.Map.iter
    (fun x ms ->
      Buffer.add_string buf x;
      Buffer.add_string buf "::";
      List.iter add_msg ms;
      Buffer.add_char buf '\n')
    s.memory.Memory.msgs;
  Buffer.add_string buf "S:";
  add_view s.memory.Memory.scv;
  Buffer.add_char buf '\n';
  List.iter
    (fun (th : Thread.t) ->
      Buffer.add_string buf "T:";
      (match interner with
       | Some i -> Buffer.add_string buf (string_of_int (intern i th.Thread.prog))
       | None -> Buffer.add_string buf (Fmt.str "%a" Prog.pp_state th.Thread.prog));
      Buffer.add_char buf '|';
      add_view th.Thread.views.Tview.cur;
      Buffer.add_char buf ';';
      add_view th.Thread.views.Tview.acq;
      Buffer.add_char buf ';';
      add_view th.Thread.views.Tview.rel;
      Buffer.add_char buf '|';
      List.iter add_msg th.Thread.promises;
      Buffer.add_char buf '|';
      List.iter
        (fun v -> Buffer.add_string buf (Value.to_string v ^ ","))
        th.Thread.outs;
      Buffer.add_string buf (Printf.sprintf "|%d\n" th.Thread.promised))
    s.threads;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Certification                                                        *)
(* ------------------------------------------------------------------ *)

(* Certification verdicts depend on the exploration parameters as well
   as the canonical state; a memo table shared across explorations with
   differing params must keep their entries apart. *)
let params_fingerprint (p : Thread.params) : string =
  Printf.sprintf "%s;%d;%b;%d;%d;%b|"
    (String.concat "," (List.map Value.to_string p.Thread.values))
    p.Thread.batch_bound p.Thread.batch_concrete p.Thread.promise_budget
    p.Thread.cert_fuel p.Thread.track_fence_views

(* Thread-alone search for a promise-free point (new promises excluded;
   failure steps empty the promise set and therefore certify).  [memo]
   caches verdicts across the exploration, keyed by the canonical
   single-thread state (sound: certification only depends on it and the
   params, which [key_prefix] encodes for shared tables).  [hit_counter]
   counts top-level memo hits. *)
let certify ?memo ?interner ?(key_prefix = "") ?hit_counter
    ?(budget = Engine.Budget.unlimited) (p : Thread.params) (mem : Memory.t)
    (th : Thread.t) : bool =
  let key mem th = canon_key ?interner { threads = [ th ]; memory = mem } in
  let top_key = key_prefix ^ key mem th in
  match Option.bind memo (fun m -> Hashtbl.find_opt m top_key) with
  | Some b ->
    Option.iter incr hit_counter;
    b
  | None ->
    let visited = Hashtbl.create 64 in
    let rec go fuel mem th =
      Engine.Budget.check budget;
      if th.Thread.promises = [] then true
      else if fuel = 0 then false
      else
        let k = key mem th in
        if Hashtbl.mem visited k then false
        else begin
          Hashtbl.add visited k ();
          let outcomes = Thread.steps p mem th @ Thread.lower_steps mem th in
          List.exists
            (function
              | Thread.Failure -> Thread.may_fail th
              | Thread.Step (th', mem', _) -> go (fuel - 1) mem' th')
            outcomes
        end
    in
    let result = go p.Thread.cert_fuel mem th in
    Option.iter (fun m -> Hashtbl.replace m top_key result) memo;
    result

(* ------------------------------------------------------------------ *)
(* Shareable memoization context                                        *)
(* ------------------------------------------------------------------ *)

(** A certification-memo context that can be threaded through several
    {!explore} calls (e.g. every context of one adequacy row, or all
    tasks a sweep worker domain executes).  Never share one across
    domains: the tables are plain [Hashtbl]s.  Sharing is sound across
    differing params (keys carry a params fingerprint) and only ever
    changes {e timing} and hit counts, never verdicts or state counts. *)
type memo = {
  cert_tbl : (string, bool) Hashtbl.t;
  shared_interner : interner;
  mutable hits : int;  (** cumulative hits across all uses *)
}

let make_memo () =
  {
    cert_tbl = Hashtbl.create 1024;
    shared_interner = make_interner ();
    hits = 0;
  }

let memo_hits (m : memo) = m.hits

(* ------------------------------------------------------------------ *)
(* Exploration                                                          *)
(* ------------------------------------------------------------------ *)

type result = {
  behaviors : Behavior_set.t;
  truncated : bool;  (** state budget exhausted: the set may be partial *)
  states : int;  (** distinct canonical states explored *)
  races : bool;  (** some explored state had an enabled racy access *)
  weak_races : bool;
      (** some state had a conflicting unseen message at an access of mode
          rlx or weaker — the premise of the DRF-PF guarantee counts races
          involving any non-acquire/release access *)
  memo_hits : int;
      (** certification-memo hits during this exploration — deterministic
          iff the memo was not pre-warmed by other explorations *)
}

let terminal_behavior (s : state) : behavior option =
  let rec go acc = function
    | [] -> Some (Ret (List.rev acc))
    | (th : Thread.t) :: rest ->
      (match Prog.step th.Thread.prog with
       | Prog.Terminated v when th.Thread.promises = [] ->
         go ((v, List.rev th.Thread.outs) :: acc) rest
       | _ -> None)
  in
  go [] s.threads

let state_has_race (s : state) : bool =
  List.exists
    (fun (th : Thread.t) ->
      match Prog.step th.Thread.prog with
      | Prog.Do_read (o, x, _) ->
        Thread.is_racy s.memory th x ~atomic:(Mode.read_is_atomic o)
      | Prog.Do_write (o, x, _, _) ->
        Thread.is_racy s.memory th x ~atomic:(Mode.write_is_atomic o)
      | Prog.Do_update (x, _) -> Thread.is_racy s.memory th x ~atomic:true
      | _ -> false)
    s.threads

(* An unseen message of another thread at an access of mode rlx or weaker
   (reads: na/rlx; writes: na/rlx). *)
let state_has_weak_race (s : state) : bool =
  let unseen (th : Thread.t) x =
    List.exists
      (fun m ->
        (not (Thread.has_promise th m))
        && Time.lt (View.find x (Thread.cur th)) m.Message.ts)
      (Memory.messages_at s.memory x)
  in
  List.exists
    (fun (th : Thread.t) ->
      match Prog.step th.Thread.prog with
      | Prog.Do_read ((Mode.Rna | Mode.Rrlx), x, _) -> unseen th x
      | Prog.Do_write ((Mode.Wna | Mode.Wrlx), x, _, _) -> unseen th x
      | _ -> false)
    s.threads

(** Exhaustive bounded exploration of all PS_na behaviors of a concurrent
    program.  [until_bot] stops as soon as a ⊥ behavior is recorded — sound
    when the caller only needs the behaviors of a refinement {e source}
    (⊥ subsumes everything). *)
let rec stmt_has_fence = function
  | Stmt.Fence _ -> true
  | Stmt.Seq (a, b) | Stmt.If (_, a, b) -> stmt_has_fence a || stmt_has_fence b
  | Stmt.While (_, a) -> stmt_has_fence a
  | Stmt.Skip | Stmt.Assign _ | Stmt.Load _ | Stmt.Store _ | Stmt.Cas _
  | Stmt.Fadd _ | Stmt.Choose _ | Stmt.Freeze _ | Stmt.Print _ | Stmt.Abort
  | Stmt.Return _ -> false

let explore ?(params = Thread.default_params) ?(until_bot = false) ?memo
    ?(budget = Engine.Budget.unlimited) (progs : Stmt.t list) : result =
  let params =
    if List.exists stmt_has_fence progs then params
    else { params with Thread.track_fence_views = false }
  in
  let cert_memo, interner, key_prefix =
    match memo with
    | Some m -> (m.cert_tbl, m.shared_interner, params_fingerprint params)
    | None -> (Hashtbl.create 1024, make_interner (), "")
  in
  let hit_counter = ref 0 in
  let locs =
    let fps = List.map Stmt.footprint progs in
    let all =
      List.fold_left
        (fun acc (fp : Stmt.footprint) ->
          Loc.Set.union acc (Loc.Set.union fp.Stmt.na fp.Stmt.at))
        Loc.Set.empty fps
    in
    Loc.Set.elements all
  in
  let init_state =
    {
      threads = List.map (fun s -> Thread.init (Prog.init s)) progs;
      memory = Memory.init locs;
    }
  in
  (* promises only make sense at locations the promising thread writes *)
  let writable =
    List.map
      (fun s -> Loc.Set.elements (Thread.writable_locs Loc.Set.empty s))
      progs
  in
  let visited = Hashtbl.create 4096 in
  let behaviors = ref Behavior_set.empty in
  let races = ref false in
  let weak_races = ref false in
  let truncated = ref false in
  let queue = Queue.create () in
  let push s =
    let k = canon_key ~interner s in
    if not (Hashtbl.mem visited k) then
      if Hashtbl.length visited >= params.Thread.max_states then
        truncated := true
      else begin
        Engine.Budget.spend_state budget;
        Hashtbl.add visited k ();
        Queue.push s queue
      end
  in
  push init_state;
  let stop = ref false in
  while (not !stop) && not (Queue.is_empty queue) do
    Engine.Budget.check budget;
    let s = Queue.pop queue in
    if state_has_race s then races := true;
    if state_has_weak_race s then weak_races := true;
    (match terminal_behavior s with
     | Some b -> behaviors := Behavior_set.add b !behaviors
     | None -> ());
    List.iteri
      (fun tid (th : Thread.t) ->
        let outcomes =
          Thread.steps params s.memory th
          @ Thread.promise_steps params (List.nth writable tid) s.memory th
          @ Thread.lower_steps s.memory th
        in
        List.iter
          (function
            | Thread.Failure ->
              behaviors := Behavior_set.add Bot !behaviors;
              if until_bot then stop := true
            | Thread.Step (th', mem', _) ->
              if
                certify ~memo:cert_memo ~interner ~key_prefix ~hit_counter
                  ~budget params mem' th'
              then
                push
                  {
                    threads =
                      List.mapi (fun i t -> if i = tid then th' else t) s.threads;
                    memory = mem';
                  })
          outcomes)
      s.threads
  done;
  Option.iter (fun m -> m.hits <- m.hits + !hit_counter) memo;
  {
    behaviors = !behaviors;
    truncated = !truncated;
    states = Hashtbl.length visited;
    races = !races;
    weak_races = !weak_races;
    memo_hits = !hit_counter;
  }

(** Budgeted exploration that never raises: [Error reason] on budget
    exhaustion or any trapped exception (e.g. [Stack_overflow]). *)
let explore_v ?params ?until_bot ?memo ?budget (progs : Stmt.t list) :
    (result, Engine.Verdict.reason) Stdlib.result =
  Engine.Verdict.capture (fun () ->
      explore ?params ?until_bot ?memo ?budget progs)

(* ------------------------------------------------------------------ *)
(* Behavioral refinement (Def 5.2 / 5.3)                                *)
(* ------------------------------------------------------------------ *)

let behavior_le (bt : behavior) (bs : behavior) : bool =
  match bt, bs with
  | _, Bot -> true
  | Bot, Ret _ -> false
  | Ret lt, Ret ls ->
    List.length lt = List.length ls
    && List.for_all2
         (fun (vt, ot) (vs, os) ->
           Value.le vt vs
           && List.length ot = List.length os
           && List.for_all2 Value.le ot os)
         lt ls

(** [refines ~src ~tgt]: every target behavior is ⊑-matched by a source
    behavior (a source ⊥ matches everything). *)
let refines ~(src : Behavior_set.t) ~(tgt : Behavior_set.t) : bool =
  Behavior_set.mem Bot src
  || Behavior_set.for_all
       (fun bt -> Behavior_set.exists (fun bs -> behavior_le bt bs) src)
       tgt

let pp_behavior ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Ret l ->
    let pp_one ppf (v, outs) =
      match outs with
      | [] -> Value.pp ppf v
      | _ -> Fmt.pf ppf "%a(out:%a)" Value.pp v Fmt.(list ~sep:comma Value.pp) outs
    in
    Fmt.pf ppf "⟨%a⟩" Fmt.(list ~sep:(any " ∥ ") pp_one) l

let pp_behaviors ppf set =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") pp_behavior)
    (Behavior_set.elements set)
