(** PS_na machine states, certification, exhaustive bounded exploration,
    and behavioral refinement (§5, Def 5.2/5.3).

    Exploration deduplicates states up to order-isomorphism of the
    per-location timestamp orders; promise steps, non-atomic write batches,
    and certification depth are bounded by {!Thread.params} (see
    DESIGN.md). *)

open Lang

type state = { threads : Thread.t list; memory : Memory.t }

(** A behavior: per-thread return value and output sequence, or ⊥ for a UB
    run (Def 5.2 + footnote 10). *)
type behavior =
  | Ret of (Value.t * Value.t list) list
  | Bot

val compare_behavior : behavior -> behavior -> int

module Behavior_set : Set.S with type elt = behavior

(** Interner assigning small ids to program states, so canonical keys need
    not pretty-print whole programs. *)
type interner

val make_interner : unit -> interner

(** Canonical key of a machine state: per-location timestamps replaced by
    their rank, preserving order, adjacency, views and payloads. *)
val canon_key : ?interner:interner -> state -> string

(** Fingerprint of the parameters certification verdicts depend on; used
    to key shared memo tables across explorations with differing params. *)
val params_fingerprint : Thread.params -> string

(** [certify p mem th]: can the thread, running alone without new promise
    steps, reach an empty promise set (⊥ counts: failure steps empty the
    promise set)?  [memo] caches verdicts across an exploration, with
    [key_prefix] (see {!params_fingerprint}) separating entries of
    explorations run under different params; [hit_counter] is bumped on
    every memo hit. *)
val certify :
  ?memo:(string, bool) Hashtbl.t -> ?interner:interner ->
  ?key_prefix:string -> ?hit_counter:int ref ->
  ?budget:Engine.Budget.t ->
  Thread.params -> Memory.t -> Thread.t -> bool

(** A certification-memo context reusable across {!explore} calls — e.g.
    every context exploration of one adequacy row, or all tasks one sweep
    worker domain executes.  Not domain-safe: never share one across
    domains (that is the point — each worker owns its own).  Reuse never
    changes verdicts or state counts, only timing and hit counts. *)
type memo

val make_memo : unit -> memo

(** Cumulative certification-memo hits across all uses of this context. *)
val memo_hits : memo -> int

type result = {
  behaviors : Behavior_set.t;
  truncated : bool;  (** state budget exhausted: the set may be partial *)
  states : int;  (** distinct canonical states explored *)
  races : bool;  (** some state had an enabled racy access (race-helper) *)
  weak_races : bool;
      (** some state had a conflicting unseen message at an access of mode
          rlx or weaker — the DRF-PF premise *)
  memo_hits : int;
      (** certification-memo hits during this exploration — deterministic
          iff the memo context was not pre-warmed by other explorations *)
}

(** Exhaustive bounded exploration of all PS_na behaviors of a concurrent
    program (one statement per thread).  [until_bot] stops as soon as ⊥ is
    recorded — sound when only the behaviors of a refinement {e source} are
    needed (⊥ subsumes everything).  [memo] shares certification verdicts
    with other explorations using the same context.  [budget] (default
    unlimited, a no-op) is charged one state per distinct canonical state
    and polled along the search, including inside certification; on
    exhaustion {!Engine.Budget.Exhausted} escapes — use {!explore_v} to
    get an [Error] instead.  (The per-exploration [max_states] param
    truncates instead of raising and is unaffected.) *)
val explore :
  ?params:Thread.params -> ?until_bot:bool -> ?memo:memo ->
  ?budget:Engine.Budget.t -> Stmt.t list -> result

(** Budgeted {!explore} that never raises: budget exhaustion and trapped
    exceptions (e.g. [Stack_overflow]) become [Error reason]. *)
val explore_v :
  ?params:Thread.params -> ?until_bot:bool -> ?memo:memo ->
  ?budget:Engine.Budget.t -> Stmt.t list ->
  (result, Engine.Verdict.reason) Stdlib.result

(** [⊑] on behaviors: pointwise value/output [⊑]; everything ⊑ ⊥. *)
val behavior_le : behavior -> behavior -> bool

(** [refines ~src ~tgt]: Def 5.3 — every target behavior is ⊑-matched by a
    source behavior (a source ⊥ matches everything). *)
val refines : src:Behavior_set.t -> tgt:Behavior_set.t -> bool

val pp_behavior : Format.formatter -> behavior -> unit
val pp_behaviors : Format.formatter -> Behavior_set.t -> unit
