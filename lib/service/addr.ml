(** Service endpoint addresses: Unix socket or TCP (see .mli). *)

type t = Unix_sock of string | Tcp of string * int

let fail fmt = Printf.ksprintf failwith fmt

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> fail "bad HOST:PORT %S (no colon)" s
  | Some i ->
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    let host = if host = "" then "127.0.0.1" else host in
    (match int_of_string_opt port with
     | Some p when p > 0 && p < 65536 -> Tcp (host, p)
     | _ -> fail "bad port %S in %S" port s)

let of_string s =
  let tcp_prefix = "tcp:" in
  let plen = String.length tcp_prefix in
  if String.length s > plen && String.sub s 0 plen = tcp_prefix then
    parse_hostport (String.sub s plen (String.length s - plen))
  else Unix_sock s

let to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ ->
    (match Unix.gethostbyname host with
     | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
     | _ | (exception Not_found) -> fail "cannot resolve host %S" host)

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

let domain_of = function
  | Unix_sock _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(* A peer (or a fault-injecting proxy) may vanish between our poll and
   our write; with the default disposition that write would kill the
   whole process with SIGPIPE.  Ignoring it turns the write into an
   [EPIPE] {!Unix.Unix_error}, which every caller already treats as a
   dead connection.  Set lazily at the two chokepoints every socket in
   this library passes through ({!listen_fd}, {!connect_fd}), so any
   binary that serves or dials is covered. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> () (* no SIGPIPE on this platform *))

(* Small-frame request/response traffic: Nagle only adds latency. *)
let set_nodelay addr fd =
  match addr with
  | Tcp _ ->
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Unix_sock _ -> ()

let listen_fd ?(backlog = 64) addr =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (match
     (match addr with
      | Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (sockaddr addr);
     Unix.listen fd backlog
   with
   | () -> ()
   | exception e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

(* Nonblocking connect + select + SO_ERROR: the only portable way to
   bound connection establishment. *)
let connect_timeout fd sa timeout_ms =
  Unix.set_nonblock fd;
  let finish_blocking () = Unix.clear_nonblock fd in
  (match Unix.connect fd sa with
   | () -> finish_blocking ()
   | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
     ->
     let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
     let rec wait () =
       let left = deadline -. Unix.gettimeofday () in
       if left <= 0. then
         raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
       else
         match Unix.select [] [ fd ] [] left with
         | _, [], [] -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
         | _ -> (
           match Unix.getsockopt_error fd with
           | None -> finish_blocking ()
           | Some err -> raise (Unix.Unix_error (err, "connect", "")))
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
     in
     wait ())

let connect_fd ?timeout_ms addr =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
  (match
     let sa = sockaddr addr in
     (match timeout_ms with
      | None -> Unix.connect fd sa
      | Some ms -> connect_timeout fd sa ms);
     set_nodelay addr fd
   with
   | () -> ()
   | exception e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let unlink_if_unix = function
  | Unix_sock path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
