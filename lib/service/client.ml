(** seqd protocol client (see .mli). *)

type t = { fd : Unix.file_descr; mutable open_ : bool }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
   | () -> ()
   | exception e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let request t req =
  Proto.write_frame t.fd (Proto.encode_request req);
  match Proto.read_frame t.fd with
  | Some payload -> Proto.decode_response payload
  | None -> raise (Proto.Error "connection closed before response")

let ping t = match request t Proto.Ping with Proto.Pong -> true | _ -> false

let unexpected what = function
  | Proto.Err msg -> failwith (Printf.sprintf "server error: %s" msg)
  | _ -> failwith (Printf.sprintf "unexpected response to %s" what)

let check ?(values = []) ?(fast_path = true) ?(budget = Proto.no_budget) t
    ~src ~tgt () =
  match request t (Proto.Check ({ src; tgt; values; fast_path }, budget)) with
  | Proto.Checked cr -> cr
  | resp -> unexpected "check" resp

let batch ?(budget = Proto.no_budget) t checks =
  match request t (Proto.Batch (checks, budget)) with
  | Proto.Batched crs -> crs
  | resp -> unexpected "batch" resp

let stats t =
  match request t Proto.Stats with
  | Proto.Stats_result s -> s
  | resp -> unexpected "stats" resp

let shutdown t =
  match request t Proto.Shutdown with
  | Proto.Bye -> ()
  | resp -> unexpected "shutdown" resp
