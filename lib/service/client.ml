(** seqd protocol client: timeouts, seeded backoff, retry (see .mli). *)

exception Timeout

let () =
  Printexc.register_printer (function
    | Timeout -> Some "Service.Client.Timeout"
    | _ -> None)

type policy = {
  attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
  connect_timeout_ms : float option;
  request_timeout_ms : float option;
  seed : int;
}

let default_policy =
  {
    attempts = 1;
    base_delay_ms = 10.;
    max_delay_ms = 1000.;
    connect_timeout_ms = None;
    request_timeout_ms = None;
    seed = 0;
  }

let resilient_policy =
  {
    attempts = 8;
    base_delay_ms = 5.;
    max_delay_ms = 500.;
    connect_timeout_ms = Some 5000.;
    request_timeout_ms = None;
    seed = 0;
  }

type counters = { retries : int; busy : int; reconnects : int }

type t = {
  addr : Addr.t;
  policy : policy;
  mutable fd : Unix.file_descr option;
  mutable retries : int;
  mutable busy : int;
  mutable reconnects : int;
}

let counters t = { retries = t.retries; busy = t.busy; reconnects = t.reconnects }

let backoff t ~attempt =
  let ms =
    Engine.Faults.backoff_ms ~seed:t.policy.seed
      ~base_ms:t.policy.base_delay_ms ~max_ms:t.policy.max_delay_ms ~attempt
  in
  if ms > 0. then Unix.sleepf (ms /. 1000.)

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let open_fd t =
  let fd = Addr.connect_fd ?timeout_ms:t.policy.connect_timeout_ms t.addr in
  (* nonblocking + Assembler lets the response read honour a deadline;
     Proto.write_frame waits out EAGAIN itself *)
  Unix.set_nonblock fd;
  t.fd <- Some fd;
  fd

let readable_now fd =
  match Unix.select [ fd ] [] [] 0. with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* A usable descriptor for the next request.  The protocol is strictly
   serialized (one response per request, in order), so any readable byte
   {e before} a request is sent is stale — a duplicated frame injected by
   a fault, or a server teardown in progress.  Re-sending on such a
   connection could pair the new request with the stale response, so the
   connection is replaced instead. *)
let ensure_fd t =
  match t.fd with
  | None ->
    t.reconnects <- t.reconnects + 1;
    open_fd t
  | Some fd ->
    if readable_now fd then begin
      close t;
      t.reconnects <- t.reconnects + 1;
      open_fd t
    end
    else fd

let connect ?(policy = default_policy) addr =
  let t =
    {
      addr = Addr.of_string addr;
      policy;
      fd = None;
      retries = 0;
      busy = 0;
      reconnects = 0;
    }
  in
  let rec go attempt =
    match open_fd t with
    | _ -> t
    | exception Unix.Unix_error _ when attempt < policy.attempts ->
      t.retries <- t.retries + 1;
      backoff t ~attempt;
      go (attempt + 1)
  in
  go 1

let with_connection ?policy addr f =
  let t = connect ?policy addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Read one response frame, honouring the policy's request deadline. *)
let read_response t fd =
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (ms /. 1000.))
      t.policy.request_timeout_ms
  in
  let asm = Proto.Assembler.create () in
  let buf = Bytes.create 65536 in
  let rec go () =
    match Proto.Assembler.next asm with
    | Some payload -> Proto.decode_response payload
    | None ->
      let wait =
        match deadline with
        | None -> -1.
        | Some d ->
          let left = d -. Unix.gettimeofday () in
          if left <= 0. then raise Timeout else left
      in
      (match Unix.select [ fd ] [] [] wait with
       | [], _, _ -> if deadline <> None then raise Timeout else go ()
       | _ -> (
         match Unix.read fd buf 0 (Bytes.length buf) with
         | 0 -> raise (Proto.Error "connection closed before response")
         | n ->
           Proto.Assembler.feed asm buf 0 n;
           go ()
         | exception
             Unix.Unix_error
               ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
           -> go ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

(* Verdict requests are pure, so re-sending one is always safe.
   [Shutdown] is an effect and [Stats] reads evolving state: neither is
   retried. *)
let retryable : Proto.request -> bool = function
  | Proto.Shutdown | Proto.Stats -> false
  | _ -> true

let request t req =
  let can_retry = retryable req && t.policy.attempts > 1 in
  let rec attempt n =
    match
      let fd = ensure_fd t in
      Proto.write_frame fd (Proto.encode_request req);
      read_response t fd
    with
    | Proto.Busy when can_retry && n < t.policy.attempts ->
      (* admission gate: the connection is fine, just back off *)
      t.busy <- t.busy + 1;
      t.retries <- t.retries + 1;
      backoff t ~attempt:n;
      attempt (n + 1)
    | resp -> resp
    | exception ((Unix.Unix_error _ | Proto.Error _ | Timeout) as e) ->
      close t;
      if can_retry && n < t.policy.attempts then begin
        t.retries <- t.retries + 1;
        backoff t ~attempt:n;
        attempt (n + 1)
      end
      else raise e
  in
  attempt 1

let ping t = match request t Proto.Ping with Proto.Pong -> true | _ -> false

let unexpected what = function
  | Proto.Err msg -> failwith (Printf.sprintf "server error: %s" msg)
  | Proto.Busy -> failwith (Printf.sprintf "server busy (gave up on %s)" what)
  | _ -> failwith (Printf.sprintf "unexpected response to %s" what)

let check ?(values = []) ?(fast_path = true)
    ?(backend = Proto.default_backend) ?(budget = Proto.no_budget) t ~src ~tgt
    () =
  match
    request t (Proto.Check ({ src; tgt; values; fast_path; backend }, budget))
  with
  | Proto.Checked cr -> cr
  | resp -> unexpected "check" resp

let batch ?(budget = Proto.no_budget) t checks =
  match request t (Proto.Batch (checks, budget)) with
  | Proto.Batched crs -> crs
  | resp -> unexpected "batch" resp

let stats t =
  match request t Proto.Stats with
  | Proto.Stats_result s -> s
  | resp -> unexpected "stats" resp

let shutdown t =
  match request t Proto.Shutdown with
  | Proto.Bye -> ()
  | resp -> unexpected "shutdown" resp
