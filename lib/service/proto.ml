(** seqd wire protocol: framing and tagged binary codec (see .mli). *)

let version = 3
let magic = "SEQD"
let max_frame = 16 * 1024 * 1024

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* primitive writers/readers                                           *)
(* ------------------------------------------------------------------ *)

let w_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let w_u32 buf n =
  if n < 0 || n > 0xffff_ffff then fail "u32 out of range: %d" n;
  w_u8 buf (n lsr 24);
  w_u8 buf (n lsr 16);
  w_u8 buf (n lsr 8);
  w_u8 buf n

let w_i64 buf n =
  let n = Int64.of_int n in
  for i = 7 downto 0 do
    w_u8 buf (Int64.to_int (Int64.shift_right_logical n (8 * i)) land 0xff)
  done

(* floats travel as their IEEE-754 bits, not via Int64.to_int (which
   would drop the top bit) *)
let w_float buf f =
  let bits = Int64.bits_of_float f in
  for i = 7 downto 0 do
    w_u8 buf (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
  done

let w_bool buf b = w_u8 buf (if b then 1 else 0)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_list buf w xs =
  w_u32 buf (List.length xs);
  List.iter (w buf) xs

let w_option buf w = function
  | None -> w_u8 buf 0
  | Some x ->
    w_u8 buf 1;
    w buf x

type reader = { s : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.s then
    fail "truncated payload at byte %d (need %d of %d)" r.pos n
      (String.length r.s)

let r_u8 r =
  need r 1;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u32 r =
  let a = r_u8 r in
  let b = r_u8 r in
  let c = r_u8 r in
  let d = r_u8 r in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let r_i64 r =
  let bits = ref 0L in
  for _ = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (r_u8 r))
  done;
  !bits

let r_int r = Int64.to_int (r_i64 r)
let r_float r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> fail "bad bool tag %d" n

let r_str r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_u32 r in
  if n > max_frame then fail "list length %d exceeds frame bound" n;
  List.init n (fun _ -> f r)

let r_option r f = match r_u8 r with 0 -> None | _ -> Some (f r)

let r_done r =
  if r.pos <> String.length r.s then
    fail "trailing bytes: %d of %d consumed" r.pos (String.length r.s)

(* ------------------------------------------------------------------ *)
(* protocol values                                                     *)
(* ------------------------------------------------------------------ *)

type budget = { timeout_ms : float option; max_states : int option }

let no_budget = { timeout_ms = None; max_states = None }

type check = {
  src : string;
  tgt : string;
  values : int list;
  fast_path : bool;
  backend : string;
}

let default_backend = "seq"

type litmus_params = { promises : int; batch : int; lit_max_states : int }

type opt_req = { oprog : string; ovalues : int list; ofast_path : bool }
type lit_req = { lprog : string; lparams : litmus_params }

type request =
  | Ping
  | Check of check * budget
  | Batch of check list * budget
  | Lint of { prog : string; hints : bool }
  | Optimize of opt_req * budget
  | Litmus of lit_req * budget
  | Stats
  | Shutdown

type tier = Computed | Mem | Disk

let tier_to_string = function
  | Computed -> "computed"
  | Mem -> "mem"
  | Disk -> "disk"

type origin = Static | Static_abs | Enumerated

let origin_to_string = function
  | Static -> "static"
  | Static_abs -> "static-abs"
  | Enumerated -> "enumerated"

type verdict =
  | Refines_simple
  | Refines_advanced
  | Refuted
  | Unknown of string

let verdict_to_string = function
  | Refines_simple -> "REFINES(simple)"
  | Refines_advanced -> "REFINES(advanced)"
  | Refuted -> "REFUTED"
  | Unknown reason -> Printf.sprintf "UNKNOWN(%s)" reason

type check_result = {
  verdict : verdict;
  origin : origin option;
  tier : tier;
  states : int;
}

let check_result_to_string cr =
  Printf.sprintf "%s via %s [%s]"
    (verdict_to_string cr.verdict)
    (match cr.origin with Some o -> origin_to_string o | None -> "-")
    (tier_to_string cr.tier)

type response =
  | Pong
  | Checked of check_result
  | Batched of check_result list
  | Linted of {
      errors : int;
      warnings : int;
      hints : int;
      rendered : string;
      tier : tier;
    }
  | Optimized of {
      output : string;
      result : check_result;
      passes : (string * int) list;
    }
  | Litmus_result of {
      behaviors : string;
      states : int;
      races : bool;
      truncated : bool;
      tier : tier;
    }
  | Stats_result of string
  | Err of string
  | Busy
  | Bye

let response_tier = function
  | Checked cr -> Some cr.tier
  | Batched _ -> None
  | Linted l -> Some l.tier
  | Optimized o -> Some o.result.tier
  | Litmus_result l -> Some l.tier
  | Pong | Stats_result _ | Err _ | Busy | Bye -> None

let with_tier resp tier =
  match resp with
  | Checked cr -> Checked { cr with tier }
  | Linted l -> Linted { l with tier }
  | Optimized o -> Optimized { o with result = { o.result with tier } }
  | Litmus_result l -> Litmus_result { l with tier }
  | Pong | Batched _ | Stats_result _ | Err _ | Busy | Bye -> resp

(* ------------------------------------------------------------------ *)
(* codec                                                               *)
(* ------------------------------------------------------------------ *)

let w_budget buf (b : budget) =
  w_option buf (fun buf f -> w_float buf f) b.timeout_ms;
  w_option buf w_i64 b.max_states

let r_budget r =
  let timeout_ms = r_option r r_float in
  let max_states = r_option r r_int in
  { timeout_ms; max_states }

let w_check buf (c : check) =
  w_str buf c.src;
  w_str buf c.tgt;
  w_list buf w_i64 c.values;
  w_bool buf c.fast_path;
  w_str buf c.backend

let r_check r =
  let src = r_str r in
  let tgt = r_str r in
  let values = r_list r r_int in
  let fast_path = r_bool r in
  let backend = r_str r in
  { src; tgt; values; fast_path; backend }

let encode_request req =
  let buf = Buffer.create 256 in
  (match req with
   | Ping -> w_u8 buf 0
   | Check (c, b) ->
     w_u8 buf 1;
     w_check buf c;
     w_budget buf b
   | Batch (cs, b) ->
     w_u8 buf 2;
     w_list buf w_check cs;
     w_budget buf b
   | Lint { prog; hints } ->
     w_u8 buf 3;
     w_str buf prog;
     w_bool buf hints
   | Optimize ({ oprog; ovalues; ofast_path }, b) ->
     w_u8 buf 4;
     w_str buf oprog;
     w_list buf w_i64 ovalues;
     w_bool buf ofast_path;
     w_budget buf b
   | Litmus ({ lprog; lparams }, b) ->
     w_u8 buf 5;
     w_str buf lprog;
     w_i64 buf lparams.promises;
     w_i64 buf lparams.batch;
     w_i64 buf lparams.lit_max_states;
     w_budget buf b
   | Stats -> w_u8 buf 6
   | Shutdown -> w_u8 buf 7);
  Buffer.contents buf

let decode_request s =
  let r = { s; pos = 0 } in
  let req =
    match r_u8 r with
    | 0 -> Ping
    | 1 ->
      let c = r_check r in
      let b = r_budget r in
      Check (c, b)
    | 2 ->
      let cs = r_list r r_check in
      let b = r_budget r in
      Batch (cs, b)
    | 3 ->
      let prog = r_str r in
      let hints = r_bool r in
      Lint { prog; hints }
    | 4 ->
      let oprog = r_str r in
      let ovalues = r_list r r_int in
      let ofast_path = r_bool r in
      let b = r_budget r in
      Optimize ({ oprog; ovalues; ofast_path }, b)
    | 5 ->
      let lprog = r_str r in
      let promises = r_int r in
      let batch = r_int r in
      let lit_max_states = r_int r in
      let b = r_budget r in
      Litmus ({ lprog; lparams = { promises; batch; lit_max_states } }, b)
    | 6 -> Stats
    | 7 -> Shutdown
    | n -> fail "unknown request tag %d" n
  in
  r_done r;
  req

let w_tier buf = function
  | Computed -> w_u8 buf 0
  | Mem -> w_u8 buf 1
  | Disk -> w_u8 buf 2

let r_tier r =
  match r_u8 r with
  | 0 -> Computed
  | 1 -> Mem
  | 2 -> Disk
  | n -> fail "unknown tier tag %d" n

let w_origin buf = function
  | Static -> w_u8 buf 0
  | Enumerated -> w_u8 buf 1
  | Static_abs -> w_u8 buf 2

let r_origin r =
  match r_u8 r with
  | 0 -> Static
  | 1 -> Enumerated
  | 2 -> Static_abs
  | n -> fail "unknown origin tag %d" n

let w_verdict buf = function
  | Refines_simple -> w_u8 buf 0
  | Refines_advanced -> w_u8 buf 1
  | Refuted -> w_u8 buf 2
  | Unknown reason ->
    w_u8 buf 3;
    w_str buf reason

let r_verdict r =
  match r_u8 r with
  | 0 -> Refines_simple
  | 1 -> Refines_advanced
  | 2 -> Refuted
  | 3 -> Unknown (r_str r)
  | n -> fail "unknown verdict tag %d" n

let w_check_result buf (cr : check_result) =
  w_verdict buf cr.verdict;
  w_option buf w_origin cr.origin;
  w_tier buf cr.tier;
  w_i64 buf cr.states

let r_check_result r =
  let verdict = r_verdict r in
  let origin = r_option r r_origin in
  let tier = r_tier r in
  let states = r_int r in
  { verdict; origin; tier; states }

let encode_response resp =
  let buf = Buffer.create 256 in
  (match resp with
   | Pong -> w_u8 buf 0
   | Checked cr ->
     w_u8 buf 1;
     w_check_result buf cr
   | Batched crs ->
     w_u8 buf 2;
     w_list buf w_check_result crs
   | Linted { errors; warnings; hints; rendered; tier } ->
     w_u8 buf 3;
     w_i64 buf errors;
     w_i64 buf warnings;
     w_i64 buf hints;
     w_str buf rendered;
     w_tier buf tier
   | Optimized { output; result; passes } ->
     w_u8 buf 4;
     w_str buf output;
     w_check_result buf result;
     w_list buf
       (fun buf (name, rewrites) ->
         w_str buf name;
         w_i64 buf rewrites)
       passes
   | Litmus_result { behaviors; states; races; truncated; tier } ->
     w_u8 buf 5;
     w_str buf behaviors;
     w_i64 buf states;
     w_bool buf races;
     w_bool buf truncated;
     w_tier buf tier
   | Stats_result s ->
     w_u8 buf 6;
     w_str buf s
   | Err msg ->
     w_u8 buf 7;
     w_str buf msg
   | Bye -> w_u8 buf 8
   | Busy -> w_u8 buf 9);
  Buffer.contents buf

let decode_response s =
  let r = { s; pos = 0 } in
  let resp =
    match r_u8 r with
    | 0 -> Pong
    | 1 -> Checked (r_check_result r)
    | 2 -> Batched (r_list r r_check_result)
    | 3 ->
      let errors = r_int r in
      let warnings = r_int r in
      let hints = r_int r in
      let rendered = r_str r in
      let tier = r_tier r in
      Linted { errors; warnings; hints; rendered; tier }
    | 4 ->
      let output = r_str r in
      let result = r_check_result r in
      let passes =
        r_list r (fun r ->
            let name = r_str r in
            let rewrites = r_int r in
            (name, rewrites))
      in
      Optimized { output; result; passes }
    | 5 ->
      let behaviors = r_str r in
      let states = r_int r in
      let races = r_bool r in
      let truncated = r_bool r in
      let tier = r_tier r in
      Litmus_result { behaviors; states; races; truncated; tier }
    | 6 -> Stats_result (r_str r)
    | 7 -> Err (r_str r)
    | 8 -> Bye
    | 9 -> Busy
    | n -> fail "unknown response tag %d" n
  in
  r_done r;
  resp

(* ------------------------------------------------------------------ *)
(* framing over a file descriptor                                      *)
(* ------------------------------------------------------------------ *)

(* The blocking framing helpers must behave identically whether a write
   or read completes in one syscall or many: a TCP segment boundary, a
   signal (EINTR), or a nonblocking descriptor (EAGAIN, waited out with
   [select]) must never tear a frame.  A partial syscall is therefore
   always resumed, never treated as completion. *)

let wait_fd ~for_write fd =
  match
    if for_write then Unix.select [] [ fd ] [] (-1.0)
    else Unix.select [ fd ] [] [] (-1.0)
  with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let rec write_all fd bytes pos len =
  if len > 0 then begin
    match Unix.write fd bytes pos len with
    | n -> write_all fd bytes (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes pos len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      wait_fd ~for_write:true fd;
      write_all fd bytes pos len
  end

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then fail "frame payload %d exceeds max %d" len max_frame;
  let buf = Buffer.create (9 + len) in
  Buffer.add_string buf magic;
  w_u8 buf version;
  w_u32 buf len;
  Buffer.add_string buf payload;
  let bytes = Buffer.to_bytes buf in
  write_all fd bytes 0 (Bytes.length bytes)

(* Read exactly [len] bytes; [eof_ok] permits EOF before the first
   byte (a clean connection close between frames). *)
let read_exactly ?(eof_ok = false) fd len =
  let bytes = Bytes.create len in
  let rec go pos =
    if pos >= len then Some bytes
    else
      match Unix.read fd bytes pos (len - pos) with
      | 0 ->
        if pos = 0 && eof_ok then None
        else fail "unexpected EOF after %d of %d bytes" pos len
      | n -> go (pos + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_fd ~for_write:false fd;
        go pos
  in
  go 0

let header_len = 9

(* Validate a complete 9-byte header; returns the payload length. *)
let parse_header hdr =
  let m = Bytes.sub_string hdr 0 4 in
  if m <> magic then fail "bad magic %S (want %S)" m magic;
  let v = Char.code (Bytes.get hdr 4) in
  if v <> version then fail "protocol version mismatch: got %d, want %d" v version;
  let len =
    (Char.code (Bytes.get hdr 5) lsl 24)
    lor (Char.code (Bytes.get hdr 6) lsl 16)
    lor (Char.code (Bytes.get hdr 7) lsl 8)
    lor Char.code (Bytes.get hdr 8)
  in
  if len > max_frame then fail "frame payload %d exceeds max %d" len max_frame;
  len

let read_frame fd =
  match read_exactly ~eof_ok:true fd 4 with
  | None -> None
  | Some m ->
    let rest =
      match read_exactly fd (header_len - 4) with
      | Some b -> b
      | None -> assert false
    in
    let len = parse_header (Bytes.cat m rest) in
    (match read_exactly fd len with
     | Some payload -> Some (Bytes.to_string payload)
     | None -> assert false)

(* ------------------------------------------------------------------ *)
(* incremental frame assembly (nonblocking readers)                    *)
(* ------------------------------------------------------------------ *)

(* The select-multiplexed server (and the chaos proxy) read whatever the
   kernel has — possibly half a header, possibly three frames at once —
   and need frame boundaries restored without ever blocking.  An
   assembler is that state machine: feed it raw chunks, pull complete
   payloads.  Header violations raise {!Error} exactly as [read_frame]
   would, at the same byte. *)
module Assembler = struct
  type t = {
    hdr : Bytes.t;  (* the 9 header bytes being collected *)
    mutable hdr_got : int;
    mutable payload : Bytes.t option;  (* allocated once the header parses *)
    mutable got : int;  (* payload bytes collected *)
    ready : string Queue.t;
  }

  let create () =
    {
      hdr = Bytes.create header_len;
      hdr_got = 0;
      payload = None;
      got = 0;
      ready = Queue.create ();
    }

  let feed t bytes off len =
    let pos = ref off in
    let stop = off + len in
    while !pos < stop do
      match t.payload with
      | None ->
        let n = min (header_len - t.hdr_got) (stop - !pos) in
        Bytes.blit bytes !pos t.hdr t.hdr_got n;
        t.hdr_got <- t.hdr_got + n;
        pos := !pos + n;
        if t.hdr_got = header_len then begin
          let plen = parse_header t.hdr in
          t.payload <- Some (Bytes.create plen);
          t.got <- 0;
          (* a zero-length payload completes immediately *)
          if plen = 0 then begin
            Queue.push "" t.ready;
            t.payload <- None;
            t.hdr_got <- 0
          end
        end
      | Some p ->
        let n = min (Bytes.length p - t.got) (stop - !pos) in
        Bytes.blit bytes !pos p t.got n;
        t.got <- t.got + n;
        pos := !pos + n;
        if t.got = Bytes.length p then begin
          Queue.push (Bytes.to_string p) t.ready;
          t.payload <- None;
          t.hdr_got <- 0
        end
    done

  let next t = Queue.take_opt t.ready

  (* true iff EOF here would tear a frame *)
  let mid_frame t = t.hdr_got > 0 || t.payload <> None

  (* One frame as raw wire bytes (header + payload) — what a proxy
     forwards verbatim. *)
  let frame_bytes payload =
    let len = String.length payload in
    if len > max_frame then fail "frame payload %d exceeds max %d" len max_frame;
    let buf = Buffer.create (header_len + len) in
    Buffer.add_string buf magic;
    w_u8 buf version;
    w_u32 buf len;
    Buffer.add_string buf payload;
    Buffer.contents buf
end
