(** Two-tier content-addressed result cache (see .mli). *)

let format_version = 2

let entry_magic = "SEQC"

(* ------------------------------------------------------------------ *)
(* intrusive doubly-linked LRU                                         *)
(* ------------------------------------------------------------------ *)

type node = {
  nkey : string;
  nvalue : string;
  mutable prev : node option;  (** towards the front (most recent) *)
  mutable next : node option;  (** towards the back (eviction end) *)
}

type lru = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable front : node option;
  mutable back : node option;
}

let lru_create capacity =
  { capacity; table = Hashtbl.create 64; front = None; back = None }

let unlink lru n =
  (match n.prev with
   | Some p -> p.next <- n.next
   | None -> lru.front <- n.next);
  (match n.next with
   | Some s -> s.prev <- n.prev
   | None -> lru.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front lru n =
  n.next <- lru.front;
  n.prev <- None;
  (match lru.front with
   | Some f -> f.prev <- Some n
   | None -> lru.back <- Some n);
  lru.front <- Some n

let lru_find lru key =
  match Hashtbl.find_opt lru.table key with
  | None -> None
  | Some n ->
    unlink lru n;
    push_front lru n;
    Some n.nvalue

let lru_add lru key value =
  (match Hashtbl.find_opt lru.table key with
   | Some old ->
     unlink lru old;
     Hashtbl.remove lru.table key
   | None -> ());
  let n = { nkey = key; nvalue = value; prev = None; next = None } in
  push_front lru n;
  Hashtbl.replace lru.table key n;
  if Hashtbl.length lru.table > lru.capacity then
    match lru.back with
    | Some victim ->
      unlink lru victim;
      Hashtbl.remove lru.table victim.nkey
    | None -> ()

(* ------------------------------------------------------------------ *)
(* disk tier                                                           *)
(* ------------------------------------------------------------------ *)

let mkdir_p path =
  let rec go path =
    if path = "" || path = "/" || Sys.file_exists path then ()
    else begin
      go (Filename.dirname path);
      try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

(* Atomic best-effort file write: unique temp in the target directory,
   then rename. *)
let write_atomic ~dir ~path content =
  try
    mkdir_p dir;
    let tmp = Filename.temp_file ~temp_dir:dir ".seqc" ".tmp" in
    let ok =
      try
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc content);
        true
      with Sys_error _ -> false
    in
    if ok then Sys.rename tmp path
    else (try Sys.remove tmp with Sys_error _ -> ())
  with Sys_error _ | Unix.Unix_error _ -> ()

let entry_of_payload payload =
  let buf = Buffer.create (String.length payload + 25) in
  Buffer.add_string buf entry_magic;
  Buffer.add_char buf (Char.chr format_version);
  let len = String.length payload in
  Buffer.add_char buf (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (len land 0xff));
  Buffer.add_string buf (Digest.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Validate magic, version, length, digest; any failure is [None]. *)
let payload_of_entry entry =
  let hdr = 4 + 1 + 4 + 16 in
  if String.length entry < hdr then None
  else if String.sub entry 0 4 <> entry_magic then None
  else if Char.code entry.[4] <> format_version then None
  else begin
    let len =
      (Char.code entry.[5] lsl 24)
      lor (Char.code entry.[6] lsl 16)
      lor (Char.code entry.[7] lsl 8)
      lor Char.code entry.[8]
    in
    if String.length entry <> hdr + len then None
    else
      let md5 = String.sub entry 9 16 in
      let payload = String.sub entry hdr len in
      if Digest.string payload <> md5 then None else Some payload
  end

(* ------------------------------------------------------------------ *)
(* the cache                                                           *)
(* ------------------------------------------------------------------ *)

type stats = { hits_mem : int; hits_disk : int; misses : int; writes : int }

type t = {
  mutex : Mutex.t;
  lru : lru;
  dir : string option;
  mutable hits_mem : int;
  mutable hits_disk : int;
  mutable misses : int;
  mutable writes : int;
}

let version_path dir = Filename.concat dir "VERSION"

let read_version dir =
  try
    In_channel.with_open_text (version_path dir) (fun ic ->
        Option.bind (In_channel.input_line ic) int_of_string_opt)
  with Sys_error _ -> None

let write_version dir =
  write_atomic ~dir ~path:(version_path dir)
    (string_of_int format_version ^ "\n")

(* Drop every entry (shard dirs and stray temp files) but keep the root;
   IO errors are swallowed like everywhere else on the disk tier. *)
let clear_store dir =
  Array.iter
    (fun name ->
      if name <> "VERSION" then begin
        let p = Filename.concat dir name in
        try
          if Sys.is_directory p then begin
            Array.iter
              (fun e -> try Sys.remove (Filename.concat p e) with Sys_error _ -> ())
              (Sys.readdir p);
            Unix.rmdir p
          end
          else Sys.remove p
        with Sys_error _ | Unix.Unix_error _ -> ()
      end)
    (try Sys.readdir dir with Sys_error _ -> [||])

(* ------------------------------------------------------------------ *)
(* fsck                                                                *)
(* ------------------------------------------------------------------ *)

type fsck_report = {
  scanned : int;
  valid : int;
  pruned : int;
  orphan_tmp : int;
  version_reset : bool;
}

let fsck_clean r = r.pruned = 0 && r.orphan_tmp = 0 && not r.version_reset

(* A kill mid-write leaves orphan temp files; a torn rename cannot
   happen, but disk corruption (or truncation by another tool) can leave
   an entry whose magic/version/length/MD5 no longer validate.  Both
   read as misses at serving time; [fsck] reclaims the space and reports
   what it found.  Temp files are [Filename.temp_file ".seqc*.tmp"]
   debris in shard dirs or the root. *)
let fsck ~dir =
  let is_tmp name =
    String.length name > 4
    && String.sub name (String.length name - 4) 4 = ".tmp"
  in
  let report =
    ref { scanned = 0; valid = 0; pruned = 0; orphan_tmp = 0;
          version_reset = false }
  in
  let remove path = try Sys.remove path with Sys_error _ -> () in
  if not (Sys.file_exists dir) then !report
  else begin
    (match read_version dir with
     | Some v when v = format_version -> ()
     | _ ->
       (* foreign or missing VERSION: every entry belongs to another
          format; clear and restamp, like [create] would *)
       clear_store dir;
       write_version dir;
       report := { !report with version_reset = true });
    Array.iter
      (fun name ->
        let p = Filename.concat dir name in
        if is_tmp name then begin
          remove p;
          report := { !report with orphan_tmp = !report.orphan_tmp + 1 }
        end
        else if name <> "VERSION" && (try Sys.is_directory p with Sys_error _ -> false)
        then
          Array.iter
            (fun entry ->
              let ep = Filename.concat p entry in
              if is_tmp entry then begin
                remove ep;
                report := { !report with orphan_tmp = !report.orphan_tmp + 1 }
              end
              else begin
                report := { !report with scanned = !report.scanned + 1 };
                let ok =
                  match
                    In_channel.with_open_bin ep In_channel.input_all
                  with
                  | entry -> payload_of_entry entry <> None
                  | exception Sys_error _ -> false
                in
                if ok then report := { !report with valid = !report.valid + 1 }
                else begin
                  remove ep;
                  report := { !report with pruned = !report.pruned + 1 }
                end
              end)
            (try Sys.readdir p with Sys_error _ -> [||]))
      (try Sys.readdir dir with Sys_error _ -> [||]);
    !report
  end

let create ?dir ~mem_capacity () =
  if mem_capacity < 1 then invalid_arg "Cache.create: mem_capacity must be >= 1";
  (match dir with
   | None -> ()
   | Some dir ->
     mkdir_p dir;
     (* A disagreeing VERSION marks a store from another format — even if
        the per-entry headers would still parse, the fingerprint rendering
        behind the keys may have changed, so the store must read as empty.
        Clear it and stamp the current version. *)
     (match read_version dir with
      | Some v when v = format_version -> ()
      | _ ->
        clear_store dir;
        write_version dir));
  {
    mutex = Mutex.create ();
    lru = lru_create mem_capacity;
    dir;
    hits_mem = 0;
    hits_disk = 0;
    misses = 0;
    writes = 0;
  }

type hit = Hit_mem | Hit_disk

let shard_of_key key =
  if String.length key > 2 then (String.sub key 0 2, String.sub key 2 (String.length key - 2))
  else ("_", key)

let entry_path dir key =
  let shard, rest = shard_of_key key in
  let sdir = Filename.concat dir shard in
  (sdir, Filename.concat sdir rest)

let disk_find t key =
  match t.dir with
  | None -> None
  | Some dir ->
    let _, path = entry_path dir key in
    (try
       let entry =
         In_channel.with_open_bin path In_channel.input_all
       in
       payload_of_entry entry
     with Sys_error _ -> None)

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  with_lock t (fun () ->
      match lru_find t.lru key with
      | Some v ->
        t.hits_mem <- t.hits_mem + 1;
        Some (v, Hit_mem)
      | None ->
        (match disk_find t key with
         | Some payload ->
           t.hits_disk <- t.hits_disk + 1;
           lru_add t.lru key payload;
           Some (payload, Hit_disk)
         | None ->
           t.misses <- t.misses + 1;
           None))

let add t key payload =
  with_lock t (fun () ->
      lru_add t.lru key payload;
      match t.dir with
      | None -> ()
      | Some dir ->
        let sdir, path = entry_path dir key in
        write_atomic ~dir:sdir ~path (entry_of_payload payload);
        t.writes <- t.writes + 1)

let mem_size t = with_lock t (fun () -> Hashtbl.length t.lru.table)

let stats t =
  with_lock t (fun () ->
      {
        hits_mem = t.hits_mem;
        hits_disk = t.hits_disk;
        misses = t.misses;
        writes = t.writes;
      })
