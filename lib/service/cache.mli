(** Two-tier content-addressed result cache: an in-memory LRU in front
    of an on-disk store.

    Keys are content fingerprints ({!Lang.Fingerprint.key} digests over a
    canonical program rendering plus the check parameters), so a cached
    verdict is valid forever: the SEQ verdicts are pure functions of the
    key's preimage.  Only {e definite} results should be stored —
    [Unknown] verdicts depend on the budget, which is deliberately not
    part of the key (callers enforce this; the cache stores opaque
    payloads).

    Disk layout, under the store root:
    - [VERSION] — one line, the store format version;
    - [ab/cdef...] — one file per entry, sharded by the key's first two
      hex chars.

    Entry file format: 4-byte magic ["SEQC"], 1-byte format version,
    big-endian 4-byte payload length, 16-byte MD5 of the payload, then
    the payload.  {!find} validates all four; {e any} mismatch — a
    truncated write, a garbled byte, an entry from another format
    version — is a miss, never an error (the acceptance bar for
    kill-and-restart robustness).

    Writes are atomic: payloads go to a unique temp file in the shard
    directory and are renamed into place, so a reader never observes a
    half-written entry and a crash leaves at worst an orphan temp file.

    Thread-safety: all operations take an internal mutex; a cache may be
    shared across domains (the server shares one between its accept loop
    and in-process test harnesses). *)

type t

(** Store format version (bumped when the entry encoding or the
    fingerprint rendering changes). *)
val format_version : int

(** [create ?dir ~mem_capacity ()] opens a cache.  [dir = None] is
    memory-only.  A missing directory is created (with its [VERSION]
    file); an existing directory whose [VERSION] disagrees with
    {!format_version} is cleared — its entries belong to another format,
    so every lookup must miss — and re-versioned so new writes land in
    the current format.  [mem_capacity] (>= 1) bounds the LRU entry
    count. *)
val create : ?dir:string -> mem_capacity:int -> unit -> t

(** Which tier a {!find} was served from. *)
type hit = Hit_mem | Hit_disk

(** Look up a payload.  A disk hit is promoted into the LRU. *)
val find : t -> string -> (string * hit) option

(** Insert into both tiers (disk write is atomic; IO errors are
    swallowed — the disk tier is best-effort). *)
val add : t -> string -> string -> unit

(** Entries currently resident in the LRU. *)
val mem_size : t -> int

(** Cumulative counters since [create]: memory hits, disk hits, misses,
    disk entries written. *)
type stats = { hits_mem : int; hits_disk : int; misses : int; writes : int }

val stats : t -> stats

(** {2 Store fsck}

    Offline scan of an on-disk store (run it on a store no daemon has
    open): validates every entry's magic/version/length/MD5 exactly as
    {!find} would, prunes the ones that fail, and removes orphan temp
    files left by a kill mid-write.  A store whose [VERSION] disagrees
    with {!format_version} is cleared and restamped (as {!create} would
    on open). *)

type fsck_report = {
  scanned : int;  (** entries examined *)
  valid : int;  (** entries that validated *)
  pruned : int;  (** corrupt entries removed *)
  orphan_tmp : int;  (** leftover temp files removed *)
  version_reset : bool;  (** store was foreign-format and was cleared *)
}

(** Nothing pruned, no debris, no version reset. *)
val fsck_clean : fsck_report -> bool

(** Scan and repair [dir].  A missing directory yields an all-zero
    (clean) report. *)
val fsck : dir:string -> fsck_report

(** {2 Store primitives}

    The on-disk building blocks, exposed for sibling stores that share
    the SEQC format (the fuzz corpus store, {!Fuzz.Persist}): the entry
    codec, the atomic write discipline, and the shard layout.  A store
    assembled from these is {!fsck}-compatible — every entry validates
    (or is pruned) exactly as a cache entry would. *)

(** Wrap a payload in the entry framing: magic, format version,
    big-endian length, MD5, payload. *)
val entry_of_payload : string -> string

(** Validate an entry's magic/version/length/MD5 and return its payload;
    {e any} mismatch is [None], never an error. *)
val payload_of_entry : string -> string option

(** Atomic best-effort write: a unique temp file in [dir] renamed onto
    [path]; [dir] is created if missing, IO errors are swallowed. *)
val write_atomic : dir:string -> path:string -> string -> unit

(** [entry_path root key] = [(shard_dir, entry_file)] under the sharded
    layout (first two key characters name the shard). *)
val entry_path : string -> string -> string * string
