(** The seqd wire protocol: versioned, length-prefixed frames.

    One frame = a 9-byte header — the 4-byte magic ["SEQD"], a 1-byte
    protocol {!version}, a big-endian 4-byte payload length — followed by
    the payload, a tagged binary encoding of one {!request} or
    {!response}.  Programs travel as source text (parsed server-side), so
    the protocol has no OCaml-version coupling ([Marshal] is never used).

    Framing guarantees:
    - a magic or version mismatch raises {!Error} immediately — a v2
      client talking to a v1 server gets one deterministic error, never a
      mis-parse;
    - payloads larger than {!max_frame} are refused before allocation;
    - {!read_frame} returns [None] exactly on clean EOF at a frame
      boundary; EOF mid-frame raises {!Error}.

    The request/response encodings are self-describing enough for the
    cache: a cached response payload re-decodes with {!decode_response}
    and is re-tagged with the serving tier ({!with_tier}) before going
    back on the wire, preserving the original proof provenance. *)

(** Protocol (and cache payload) version. *)
val version : int

val magic : string

(** Maximum payload bytes accepted per frame. *)
val max_frame : int

(** Framing or codec violation (bad magic, version mismatch, truncated
    frame, unknown tag, oversized payload). *)
exception Error of string

(** Per-request budget; [None] fields are unlimited. *)
type budget = { timeout_ms : float option; max_states : int option }

val no_budget : budget

(** One refinement check: [values] is the finite domain (empty = the
    default domain), [fast_path] allows static certificates.  [backend]
    selects the memory model the check runs under: {!default_backend}
    (["seq"]) is the SEQ sequential refinement (Def 2.4 / Def 3.3); a
    registered hardware backend name (["sc"], ["tso"], ["armv8"],
    ["ps"], ...) means behavior-set inclusion under that machine —
    introduced with protocol version 3, keyed into the cache so verdicts
    never leak between backends. *)
type check = {
  src : string;
  tgt : string;
  values : int list;
  fast_path : bool;
  backend : string;
}

(** ["seq"], the classic sequential-refinement check. *)
val default_backend : string

type litmus_params = { promises : int; batch : int; lit_max_states : int }

type opt_req = { oprog : string; ovalues : int list; ofast_path : bool }
type lit_req = { lprog : string; lparams : litmus_params }

type request =
  | Ping
  | Check of check * budget
  | Batch of check list * budget  (** one connection, one parallel sweep *)
  | Lint of { prog : string; hints : bool }
  | Optimize of opt_req * budget
  | Litmus of lit_req * budget
  | Stats
  | Shutdown

(** Which cache tier served the answer. *)
type tier = Computed | Mem | Disk

val tier_to_string : tier -> string

(** How a definite verdict was originally established (mirrors
    {!Engine.Verdict.provenance}); preserved across cache tiers.
    [Static_abs] is the abstract-interpretation certifier — wire tag 2,
    introduced with protocol version 2. *)
type origin = Static | Static_abs | Enumerated

val origin_to_string : origin -> string

type verdict =
  | Refines_simple  (** Def 2.4 holds (hence Def 3.3 too) *)
  | Refines_advanced  (** Def 3.3 holds, Def 2.4 does not *)
  | Refuted
  | Unknown of string  (** budget ran out / trapped failure: not cached *)

val verdict_to_string : verdict -> string

type check_result = {
  verdict : verdict;
  origin : origin option;  (** [None] iff the verdict is [Unknown] *)
  tier : tier;
  states : int;  (** budget states charged (0 when unlimited or cached) *)
}

(** Deterministic one-line rendering, e.g.
    ["REFINES(simple) via static [computed]"]. *)
val check_result_to_string : check_result -> string

type response =
  | Pong
  | Checked of check_result
  | Batched of check_result list
  | Linted of {
      errors : int;
      warnings : int;
      hints : int;
      rendered : string;
      tier : tier;
    }
  | Optimized of {
      output : string;  (** optimized program, parseable text *)
      result : check_result;  (** validation of the transformation *)
      passes : (string * int) list;  (** pass name, rewrites *)
    }
  | Litmus_result of {
      behaviors : string;
      states : int;
      races : bool;
      truncated : bool;
      tier : tier;
    }
  | Stats_result of string  (** {!Engine.Metrics.render} snapshot *)
  | Err of string
  | Busy  (** admission gate full; back off and resend the request *)
  | Bye  (** acknowledged [Shutdown]; the server drains and exits *)

(** Serving tier of a response, when it has one. *)
val response_tier : response -> tier option

(** Re-tag a response with the tier it is being served from (identity on
    responses without a tier).  Proof provenance ([origin]) is
    untouched. *)
val with_tier : response -> tier -> response

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** Write one frame (header + payload).  Loops until every byte is
    written: short writes are resumed, [EINTR] is retried, and [EAGAIN]
    on a nonblocking descriptor is waited out — a frame is never torn by
    a partial syscall.  @raise Error on oversized payloads. *)
val write_frame : Unix.file_descr -> string -> unit

(** Read one frame's payload, looping across partial reads and retrying
    [EINTR]/[EAGAIN] the same way.  [None] on clean EOF before any
    header byte.  @raise Error on bad magic/version/length or EOF
    mid-frame. *)
val read_frame : Unix.file_descr -> string option

(** Incremental frame reassembly for nonblocking readers (the
    select-multiplexed server and the chaos proxy): feed raw byte chunks
    as they arrive — half a header, three frames at once, anything —
    and pull complete payloads out in order. *)
module Assembler : sig
  type t

  val create : unit -> t

  (** Feed [len] bytes of [bytes] starting at [off].  @raise Error at
      the same byte [read_frame] would: bad magic, version mismatch, or
      an oversized length. *)
  val feed : t -> Bytes.t -> int -> int -> unit

  (** Next complete payload, in arrival order, if any. *)
  val next : t -> string option

  (** [true] iff EOF at this point would tear a frame (header or
      payload partially collected). *)
  val mid_frame : t -> bool

  (** A payload as raw wire bytes (header included) — what a proxy
      forwards verbatim. *)
  val frame_bytes : string -> string
end
