(** Seeded fault-injecting proxy for the seqd protocol (see .mli). *)

type fault =
  | Pass
  | Delay_ms of float
  | Drop_frame
  | Garble
  | Truncate
  | Duplicate
  | Kill

let fault_to_string = function
  | Pass -> "pass"
  | Delay_ms ms -> Printf.sprintf "delay(%.1fms)" ms
  | Drop_frame -> "drop"
  | Garble -> "garble"
  | Truncate -> "truncate"
  | Duplicate -> "duplicate"
  | Kill -> "kill"

type schedule = { seed : int; rate : float; max_delay_ms : float }

let schedule ?(rate = 0.25) ?(max_delay_ms = 5.) seed =
  { seed; rate = Float.max 0. (Float.min 1. rate); max_delay_ms }

(* The fault for frame [index] is a pure function of (seed, index) —
   the per-index stream idiom of {!Engine.Faults.seeded} — so a chaos
   run's fault sequence replays exactly no matter how the frames
   interleave in time. *)
let fault_at s index =
  let st = Random.State.make [| 0xca05; s.seed; index |] in
  if Random.State.float st 1.0 >= s.rate then Pass
  else
    match Random.State.int st 6 with
    | 0 -> Delay_ms (Random.State.float st (Float.max 0.1 s.max_delay_ms))
    | 1 -> Drop_frame
    | 2 -> Garble
    | 3 -> Truncate
    | 4 -> Duplicate
    | _ -> Kill

type counts = {
  frames : int;  (** complete frames seen (both directions) *)
  passed : int;
  delayed : int;
  dropped : int;
  garbled : int;
  truncated : int;
  duplicated : int;
  killed : int;
}

let injected c =
  c.delayed + c.dropped + c.garbled + c.truncated + c.duplicated + c.killed

(* ------------------------------------------------------------------ *)
(* the proxy                                                           *)
(* ------------------------------------------------------------------ *)

type dir = {
  src : Unix.file_descr;
  dst : Unix.file_descr;
  asm : Proto.Assembler.t;
}

type pconn = { client_fd : Unix.file_descr; up_fd : Unix.file_descr }

type t = {
  stopping : bool Atomic.t;
  domain : unit Domain.t;
  (* slots: frames passed delayed dropped garbled truncated duplicated
     killed *)
  tallies : int Atomic.t array;
}

let counts t =
  let g i = Atomic.get t.tallies.(i) in
  {
    frames = g 0;
    passed = g 1;
    delayed = g 2;
    dropped = g 3;
    garbled = g 4;
    truncated = g 5;
    duplicated = g 6;
    killed = g 7;
  }

exception Conn_dead

(* Blocking raw write on a nonblocking fd; any error kills the pair. *)
let send_raw fd bytes len =
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd bytes !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ fd ] [] 1.0 with
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error _ -> raise Conn_dead
  done

let send_frame fd payload =
  let s = Proto.Assembler.frame_bytes payload in
  send_raw fd (Bytes.of_string s) (String.length s)

let serve_proxy ~listen ~upstream ~sched stopping tallies =
  let t_frames = 0 and t_pass = 1 and t_delay = 2 and t_drop = 3 in
  let t_garble = 4 and t_trunc = 5 and t_dup = 6 and t_kill = 7 in
  let bump i = Atomic.incr tallies.(i) in
  let lfd = Addr.listen_fd listen in
  Unix.set_nonblock lfd;
  let conns : (pconn * dir * dir) list ref = ref [] in
  let frame_idx = ref 0 in
  let buf = Bytes.create 65536 in
  let close_pair pc =
    conns := List.filter (fun (c, _, _) -> c != pc) !conns;
    (try Unix.close pc.client_fd with Unix.Unix_error _ -> ());
    try Unix.close pc.up_fd with Unix.Unix_error _ -> ()
  in
  (* Forward one complete frame through the fault schedule.  Raises
     [Conn_dead] when the fault (or a write error) kills the pair. *)
  let forward d payload =
    let idx = !frame_idx in
    incr frame_idx;
    bump t_frames;
    match fault_at sched idx with
    | Pass ->
      bump t_pass;
      send_frame d.dst payload
    | Delay_ms ms ->
      bump t_delay;
      Unix.sleepf (ms /. 1000.);
      send_frame d.dst payload
    | Drop_frame ->
      (* the peer never sees it: the client's request deadline fires
         and the retry goes through a fresh connection *)
      bump t_drop
    | Garble ->
      bump t_garble;
      let wire = Bytes.of_string (Proto.Assembler.frame_bytes payload) in
      Bytes.set wire 0 'X';  (* magic violation: one deterministic error *)
      send_raw d.dst wire (Bytes.length wire)
    | Truncate ->
      bump t_trunc;
      let wire = Proto.Assembler.frame_bytes payload in
      let keep = min (String.length wire) (9 + (String.length payload / 2)) in
      send_raw d.dst (Bytes.of_string wire) keep;
      raise Conn_dead
    | Duplicate ->
      (* the protocol has no request ids, so a surviving duplicate would
         desynchronize request/response pairing; forwarding it twice and
         killing the pair exercises the client's stale-byte hygiene *)
      bump t_dup;
      send_frame d.dst payload;
      send_frame d.dst payload;
      raise Conn_dead
    | Kill ->
      (* a few bytes of a torn frame, then the connection dies
         mid-response *)
      bump t_kill;
      let wire = Proto.Assembler.frame_bytes payload in
      send_raw d.dst (Bytes.of_string wire) (min 9 (String.length wire));
      raise Conn_dead
  in
  let pump pc d =
    match Unix.read d.src buf 0 (Bytes.length buf) with
    | 0 -> close_pair pc
    | n -> (
      match
        Proto.Assembler.feed d.asm buf 0 n;
        let rec frames () =
          match Proto.Assembler.next d.asm with
          | Some payload ->
            forward d payload;
            frames ()
          | None -> ()
        in
        frames ()
      with
      | () -> ()
      | exception (Conn_dead | Proto.Error _) -> close_pair pc)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_pair pc
  in
  let accept () =
    match Unix.accept lfd with
    | cfd, _ -> (
      match Addr.connect_fd upstream with
      | ufd ->
        Unix.set_nonblock cfd;
        Unix.set_nonblock ufd;
        (try Unix.setsockopt cfd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let pc = { client_fd = cfd; up_fd = ufd } in
        let a2b = { src = cfd; dst = ufd; asm = Proto.Assembler.create () } in
        let b2a = { src = ufd; dst = cfd; asm = Proto.Assembler.create () } in
        conns := (pc, a2b, b2a) :: !conns
      | exception Unix.Unix_error _ ->
        (try Unix.close cfd with Unix.Unix_error _ -> ()))
    | exception Unix.Unix_error _ -> ()
  in
  while not (Atomic.get stopping) do
    let reads =
      lfd
      :: List.concat_map (fun (_, a2b, b2a) -> [ a2b.src; b2a.src ]) !conns
    in
    match Unix.select reads [] [] 0.1 with
    | rs, _, _ ->
      if List.mem lfd rs then accept ();
      (* snapshot: [pump] mutates [conns] on kill *)
      List.iter
        (fun (pc, a2b, b2a) ->
          if List.exists (fun (c, _, _) -> c == pc) !conns then begin
            if List.mem a2b.src rs then pump pc a2b;
            if List.exists (fun (c, _, _) -> c == pc) !conns
               && List.mem b2a.src rs
            then pump pc b2a
          end)
        !conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter (fun (pc, _, _) -> close_pair pc) !conns;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  Addr.unlink_if_unix listen

let start ~listen ~upstream sched =
  let stopping = Atomic.make false in
  let tallies = Array.init 8 (fun _ -> Atomic.make 0) in
  let domain =
    Domain.spawn (fun () ->
        serve_proxy ~listen ~upstream ~sched stopping tallies)
  in
  (* wait for the listener to come up *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Addr.connect_fd listen with
    | fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        failwith "chaos proxy: listener never came up"
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
  in
  wait ();
  { stopping; domain; tallies }

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    Domain.join t.domain
  end
