(** Client side of the seqd protocol: one connection, many requests,
    with a resilience layer.

    All requests on a connection are served in order by the daemon, so a
    corpus run streams through a single connection — either as many
    [Check] round-trips or, better, as one [Batch] frame the server
    sweeps in parallel over its engine pool.

    Resilience ({!policy}): bounded connect/request timeouts, and
    bounded retry with seeded exponential backoff + jitter
    ({!Engine.Faults.backoff_ms} — deterministic under test).  Verdict
    requests are pure functions of their payload, so re-sending one is
    always safe; [Shutdown] (an effect) and [Stats] (evolving state) are
    never retried.  A {!Proto.Busy} answer (admission gate) backs off on
    the same connection; a connection-level failure (reset, torn frame,
    timeout, stale bytes from a duplicated frame) closes the connection
    and retries on a fresh one, so a half-read response can never be
    paired with the next request.  The default policy makes one attempt
    with no timeouts — exactly the old behavior.

    {!request} is the raw exchange; the named helpers unwrap the
    expected response constructor and raise [Failure] on a server [Err],
    a final [Busy], or a constructor mismatch.  {!Proto.Error} (framing
    violation) and {!Timeout} escape once attempts are exhausted. *)

(** The request deadline expired. *)
exception Timeout

type policy = {
  attempts : int;  (** total tries per request (1 = no retry) *)
  base_delay_ms : float;  (** first backoff delay *)
  max_delay_ms : float;  (** backoff cap *)
  connect_timeout_ms : float option;
  request_timeout_ms : float option;  (** per-attempt response deadline *)
  seed : int;  (** backoff jitter stream *)
}

(** One attempt, no timeouts: the old blocking client. *)
val default_policy : policy

(** 8 attempts, 5ms..500ms backoff, 5s connect timeout. *)
val resilient_policy : policy

(** Cumulative per-connection resilience counters. *)
type counters = {
  retries : int;  (** re-attempts, any cause (includes busy) *)
  busy : int;  (** retries caused by {!Proto.Busy} *)
  reconnects : int;  (** fresh connections after a failure *)
}

type t

val counters : t -> counters

(** Connect to a daemon: a Unix socket path or ["tcp:HOST:PORT"]
    ({!Addr.of_string}).  Connection establishment itself honours the
    policy's attempts/backoff/connect-timeout.  @raise Unix.Unix_error
    if nothing listens there after the last attempt. *)
val connect : ?policy:policy -> string -> t

val close : t -> unit

(** [with_connection addr f]: connect, run [f], always close. *)
val with_connection : ?policy:policy -> string -> (t -> 'a) -> 'a

(** One frame out, one frame in, with the policy's retry/backoff
    discipline.  A final [Busy] is returned as-is. *)
val request : t -> Proto.request -> Proto.response

val ping : t -> bool

(** Check one refinement pair ([values = []] means the server default
    domain; [fast_path] defaults to [true]; [backend] defaults to
    {!Proto.default_backend}, i.e. the SEQ sequential refinement — a
    hardware backend name means behavior-set inclusion under that
    machine, cached under its own key). *)
val check :
  ?values:int list ->
  ?fast_path:bool ->
  ?backend:string ->
  ?budget:Proto.budget ->
  t ->
  src:string ->
  tgt:string ->
  unit ->
  Proto.check_result

(** Stream a list of checks as one frame; the server sweeps them in
    parallel and answers in input order. *)
val batch :
  ?budget:Proto.budget -> t -> Proto.check list -> Proto.check_result list

(** The daemon's metrics + cache-counter snapshot (never retried). *)
val stats : t -> string

(** Ask the daemon to drain and exit (never retried). *)
val shutdown : t -> unit
