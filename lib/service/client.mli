(** Client side of the seqd protocol: one connection, many requests.

    All requests on a connection are served in order by the daemon, so a
    corpus run streams through a single connection — either as many
    [Check] round-trips or, better, as one [Batch] frame the server
    sweeps in parallel over its engine pool.

    {!request} is the raw exchange; the named helpers unwrap the
    expected response constructor and raise [Failure] on a server [Err]
    or a constructor mismatch.  {!Proto.Error} escapes on framing
    violations (version mismatch, truncated frame). *)

type t

(** Connect to a daemon's Unix socket.  @raise Unix.Unix_error if
    nothing listens there. *)
val connect : string -> t

val close : t -> unit

(** [with_connection path f]: connect, run [f], always close. *)
val with_connection : string -> (t -> 'a) -> 'a

(** One frame out, one frame in. *)
val request : t -> Proto.request -> Proto.response

val ping : t -> bool

(** Check one refinement pair ([values = []] means the server default
    domain; [fast_path] defaults to [true]). *)
val check :
  ?values:int list ->
  ?fast_path:bool ->
  ?budget:Proto.budget ->
  t ->
  src:string ->
  tgt:string ->
  unit ->
  Proto.check_result

(** Stream a list of checks as one frame; the server sweeps them in
    parallel and answers in input order. *)
val batch :
  ?budget:Proto.budget -> t -> Proto.check list -> Proto.check_result list

(** The daemon's metrics + cache-counter snapshot. *)
val stats : t -> string

(** Ask the daemon to drain and exit. *)
val shutdown : t -> unit
