(** seqd — the persistent refinement-check daemon.

    A server owns one {!Handler} (cache + metrics) and one dedicated
    {!Engine.Pool}.  A single orchestrator domain multiplexes
    connections with [select] — nonblocking sockets, incremental frame
    reassembly ({!Proto.Assembler}), partial-write buffers — and
    dispatches request evaluation onto the pool's worker domains, so N
    clients make progress simultaneously.  [Batch] requests still sweep
    their items across the same pool from inside their worker (nested
    pool entry), which remains the recommended way to stream a corpus.
    {!Cache} and {!Engine.Metrics} are domain-safe, so concurrent
    evaluations share the two-tier cache soundly.

    Ordering: at most one request per connection is in flight, and the
    next frame is not decoded until the previous response has been
    flushed — responses on a connection always arrive in request order
    (the protocol has no request ids).  Cheap control requests
    ([Ping]/[Stats]/[Shutdown]) are answered inline by the orchestrator
    and never queue behind evaluations.

    Overload: at most [max_inflight] evaluations run at once; excess
    requests are answered with {!Proto.Busy} immediately (counted as
    [req.busy] in the metrics) so clients back off and p99 degrades
    gracefully instead of collapsing.  Per-request deadlines come from
    the wire budget ({!Handler}), so a slow evaluation bounds itself.

    Graceful drain: on SIGINT/SIGTERM (when [signals] is on) or on a
    [Shutdown] request, the server stops accepting, lets in-flight
    evaluations finish, flushes their responses (and any partially
    written ones), closes every connection, unlinks the socket and
    returns.  Because cache writes are atomic (tmp+rename, {!Cache}), a
    SIGKILL instead of a drain can orphan temp files but never corrupts
    an entry — a truncated or garbled entry reads as a miss, and
    [seqd --fsck] prunes the debris. *)

type config = {
  socket_path : string;
  tcp : (string * int) option;
      (** also listen on this TCP host/port (same protocol) *)
  cache_dir : string option;  (** [None]: memory-only cache *)
  mem_capacity : int;  (** LRU entries *)
  jobs : int;  (** worker domains evaluating requests / [Batch] sweeps *)
  max_inflight : int;  (** admission gate: evaluations in flight *)
  default_budget : Engine.Budget.spec;
      (** applied to requests that carry no budget *)
}

(** Memory-only cache, 4096 LRU entries, 1 job, no TCP listener,
    [max_inflight = 8], unlimited budget. *)
val default_config : socket_path:string -> config

(** Run the accept loop until drained.  [signals] (default [true])
    installs SIGINT/SIGTERM handlers — pass [false] when embedding the
    server in a process that owns its own signal disposition (tests,
    bench).  Blocks; returns after a graceful drain. *)
val run : ?signals:bool -> config -> unit

(** {2 In-process servers}

    For tests, examples and the bench harness: the same server, running
    in a spawned domain of the current process, stopped by a [Shutdown]
    RPC. *)

type handle

(** Spawn [run ~signals:false] in a new domain and wait (up to
    [timeout_s], default 10s) for the Unix socket to accept
    connections.  @raise Failure if the socket never comes up. *)
val spawn : ?timeout_s:float -> config -> handle

(** Send [Shutdown], then join the server domain.  Idempotent. *)
val stop : handle -> unit
