(** seqd — the persistent refinement-check daemon.

    A server owns one {!Handler} (cache + metrics) and one
    {!Engine.Pool} and serves {!Proto} frames over a Unix-domain
    socket.  Request handling is single-threaded by design: the accept
    loop multiplexes connections with [select] and evaluates one request
    at a time, so requests never interleave mid-evaluation and the
    cache-consistency argument is trivial — parallelism comes from the
    engine pool {e inside} a [Batch] request, which sweeps its items
    across [jobs] domains (the recommended way to stream a corpus:
    one connection, one batch).

    Graceful drain: on SIGINT/SIGTERM (when [signals] is on) or on a
    [Shutdown] request, the server finishes the request it is
    evaluating, sends its response, stops accepting, closes every
    connection, unlinks the socket and returns.  Because cache writes
    are atomic (tmp+rename, {!Cache}), a SIGKILL instead of a drain can
    orphan temp files but never corrupts an entry — a truncated or
    garbled entry reads as a miss. *)

type config = {
  socket_path : string;
  cache_dir : string option;  (** [None]: memory-only cache *)
  mem_capacity : int;  (** LRU entries *)
  jobs : int;  (** engine pool size for [Batch] sweeps *)
  default_budget : Engine.Budget.spec;
      (** applied to requests that carry no budget *)
}

(** Memory-only cache, 4096 LRU entries, 1 job, unlimited budget. *)
val default_config : socket_path:string -> config

(** Run the accept loop until drained.  [signals] (default [true])
    installs SIGINT/SIGTERM handlers — pass [false] when embedding the
    server in a process that owns its own signal disposition (tests,
    bench).  Blocks; returns after a graceful drain. *)
val run : ?signals:bool -> config -> unit

(** {2 In-process servers}

    For tests, examples and the bench harness: the same server, running
    in a spawned domain of the current process, stopped by a [Shutdown]
    RPC. *)

type handle

(** Spawn [run ~signals:false] in a new domain and wait (up to
    [timeout_s], default 10s) for the socket to accept connections.
    @raise Failure if the socket never comes up. *)
val spawn : ?timeout_s:float -> config -> handle

(** Send [Shutdown], then join the server domain.  Idempotent. *)
val stop : handle -> unit
