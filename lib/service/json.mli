(** A minimal JSON tree and serializer (no external dependency).

    Used by `bench/main.exe --json` for the machine-readable experiment
    record (schema in docs/ENGINE.md) and available to service clients
    that want to export a {!Metrics} snapshot.  Serialization is
    deterministic: object fields are emitted in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace), RFC 8259 string
    escaping. *)
val to_string : t -> string

(** [to_channel oc j]: {!to_string} plus a trailing newline. *)
val to_channel : out_channel -> t -> unit
