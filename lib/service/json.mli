(** A minimal JSON tree and serializer (no external dependency).

    Used by `bench/main.exe --json` for the machine-readable experiment
    record (schema in docs/ENGINE.md) and available to service clients
    that want to export a {!Metrics} snapshot.  Serialization is
    deterministic: object fields are emitted in the order given. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats are emitted as [null] *)
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace), RFC 8259 string
    escaping. *)
val to_string : t -> string

(** [to_channel oc j]: {!to_string} plus a trailing newline. *)
val to_channel : out_channel -> t -> unit

exception Parse_error of string

(** Parse the subset this module emits (objects, arrays, strings with
    ASCII escapes, numbers, booleans, null) — enough to read our own
    records back, e.g. bench/guard.ml reading bench JSON records.
    @raise Parse_error with a position-prefixed message on malformed
    input. *)
val of_string : string -> t

(** Shape-checked accessors; [None] on mismatch.  [to_float_opt] also
    accepts integers. *)

val member : string -> t -> t option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
