(** Seeded fault-injecting proxy for the seqd protocol.

    Sits between a client and a daemon, reassembles frames in both
    directions ({!Proto.Assembler}), and pushes each complete frame
    through a deterministic fault schedule: the fault for the [i]-th
    frame the proxy sees is a pure function of [(seed, i)] (the
    per-index stream idiom of {!Engine.Faults}), so a fixed-seed chaos
    run injects the same fault sequence every time.

    Faults and how a resilient client masks them:
    - {!fault.Delay_ms}: latency, nothing else;
    - {!fault.Drop_frame}: the peer never sees the frame — the client's
      request deadline fires and the retry uses a fresh connection;
    - {!fault.Garble}: a corrupted magic byte — the receiver gets one
      deterministic {!Proto.Error} and the connection dies;
    - {!fault.Truncate}: a torn frame, then the connection dies;
    - {!fault.Duplicate}: the frame is forwarded twice, then the
      connection dies (the protocol has no request ids, so a surviving
      duplicate would desynchronize pairing — this exercises the
      client's stale-byte hygiene on reconnect);
    - {!fault.Kill}: a few header bytes, then the connection dies
      mid-response.

    The proxy runs on its own domain; {!stop} joins it.  It is a test
    harness, not a production component: throughput is sacrificed for
    determinism (one frame at a time through the schedule). *)

type fault =
  | Pass
  | Delay_ms of float
  | Drop_frame
  | Garble
  | Truncate
  | Duplicate
  | Kill

val fault_to_string : fault -> string

(** A fault schedule: [rate] is the probability (0..1, clamped) that a
    frame is faulted; delays are uniform in (0, max_delay_ms]. *)
type schedule = { seed : int; rate : float; max_delay_ms : float }

(** [schedule seed] with [rate] defaulting to 0.25 and [max_delay_ms]
    to 5. *)
val schedule : ?rate:float -> ?max_delay_ms:float -> int -> schedule

(** The fault applied to the [index]-th frame: pure in [(seed, index)]. *)
val fault_at : schedule -> int -> fault

(** What the proxy observed/injected, by kind. *)
type counts = {
  frames : int;  (** complete frames seen (both directions) *)
  passed : int;
  delayed : int;
  dropped : int;
  garbled : int;
  truncated : int;
  duplicated : int;
  killed : int;
}

(** Total injected faults (everything but [passed]). *)
val injected : counts -> int

type t

(** [start ~listen ~upstream sched] spawns the proxy domain, listening
    on [listen] and forwarding to [upstream] (either may be Unix or
    TCP).  Returns once the listener accepts connections.
    @raise Failure if it never comes up. *)
val start : listen:Addr.t -> upstream:Addr.t -> schedule -> t

val counts : t -> counts

(** Close everything and join the proxy domain.  Idempotent. *)
val stop : t -> unit
