(** Minimal JSON tree and serializer (see .mli). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_finite f then
      (* shortest roundtrip-ish rendering without exponent surprises *)
      Buffer.add_string buf (Printf.sprintf "%.6g" f)
    else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  add buf j;
  Buffer.contents buf

let to_channel oc j =
  output_string oc (to_string j);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing — a recursive-descent reader for the subset this module
   emits (sufficient for reading our own records back, e.g. the bench
   regression guard against bench/baseline.json).                      *)

exception Parse_error of string

let of_string (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then error "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let hex4 () =
             if !pos + 4 > n then error "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             match int_of_string_opt ("0x" ^ hex) with
             | Some code -> code
             | None -> error "bad \\u escape"
           in
           let code = hex4 () in
           let code =
             if code >= 0xD800 && code <= 0xDBFF then begin
               (* high surrogate: a \uDC00-\uDFFF pair must follow *)
               if
                 !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 pos := !pos + 2;
                 let low = hex4 () in
                 if low < 0xDC00 || low > 0xDFFF then
                   error "bad low surrogate";
                 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
               end
               else error "lone high surrogate"
             end
             else if code >= 0xDC00 && code <= 0xDFFF then
               error "lone low surrogate"
             else code
           in
           Buffer.add_utf_8_uchar buf (Uchar.of_int code)
         | _ -> error "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> error (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); List [])
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> error "expected ',' or ']'"
        in
        items []
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> error "expected ',' or '}'"
        in
        fields []
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

(* Accessors for reading records back; [None] on shape mismatch. *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
