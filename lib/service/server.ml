(** seqd accept loop: select-multiplexed, single-threaded evaluation,
    graceful drain (see .mli). *)

type config = {
  socket_path : string;
  cache_dir : string option;
  mem_capacity : int;
  jobs : int;
  default_budget : Engine.Budget.spec;
}

let default_config ~socket_path =
  {
    socket_path;
    cache_dir = None;
    mem_capacity = 4096;
    jobs = 1;
    default_budget = Engine.Budget.spec_unlimited;
  }

(* The stop flag is set from a signal handler (same domain, but
   asynchronous) and read by the loop: Atomic keeps it simple and also
   correct for in-process servers stopped from another domain. *)
let serve_loop (config : config) (stop : bool Atomic.t) =
  let handler =
    Handler.create ?cache_dir:config.cache_dir
      ~mem_capacity:config.mem_capacity
      ~default_budget:config.default_budget ()
  in
  Engine.Pool.with_pool ~jobs:config.jobs (fun pool ->
      (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
      Unix.listen listen_fd 16;
      let conns = ref [] in
      let close_conn fd =
        conns := List.filter (fun c -> c <> fd) !conns;
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      (* Serve the next frame of [fd]; false = the connection is done. *)
      let serve_one fd =
        match Proto.read_frame fd with
        | None -> false (* clean EOF *)
        | Some payload ->
          let resp =
            match Proto.decode_request payload with
            | req ->
              let resp = Handler.handle ~pool handler req in
              if resp = Proto.Bye then Atomic.set stop true;
              resp
            | exception Proto.Error msg -> Proto.Err ("protocol: " ^ msg)
          in
          (try
             Proto.write_frame fd (Proto.encode_response resp);
             true
           with Unix.Unix_error _ | Proto.Error _ -> false)
      in
      (* One request at a time: a request observed before the stop flag
         completes and its response is flushed (graceful drain); frames
         not yet read when the flag is up are dropped with the
         connection. *)
      while not (Atomic.get stop) do
        match Unix.select (listen_fd :: !conns) [] [] 0.2 with
        | [], _, _ -> ()
        | ready, _, _ ->
          List.iter
            (fun fd ->
              if Atomic.get stop then ()
              else if fd = listen_fd then begin
                match Unix.accept listen_fd with
                | conn, _ -> conns := conn :: !conns
                | exception Unix.Unix_error _ -> ()
              end
              else
                match serve_one fd with
                | true -> ()
                | false -> close_conn fd
                | exception (Proto.Error _ | Unix.Unix_error _) ->
                  close_conn fd)
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        !conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink config.socket_path with Unix.Unix_error _ -> ())

let run ?(signals = true) config =
  let stop = Atomic.make false in
  let previous = ref [] in
  if signals then
    List.iter
      (fun signum ->
        let old =
          Sys.signal signum
            (Sys.Signal_handle (fun _ -> Atomic.set stop true))
        in
        previous := (signum, old) :: !previous)
      [ Sys.sigint; Sys.sigterm ];
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (signum, old) -> Sys.set_signal signum old) !previous)
    (fun () -> serve_loop config stop)

(* ------------------------------------------------------------------ *)
(* in-process servers                                                  *)
(* ------------------------------------------------------------------ *)

type handle = {
  domain : unit Domain.t;
  hconfig : config;
  mutable stopped : bool;
}

let socket_ready path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
    let ok =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    ok

let spawn ?(timeout_s = 10.0) config =
  let domain = Domain.spawn (fun () -> run ~signals:false config) in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if socket_ready config.socket_path then ()
    else if Unix.gettimeofday () > deadline then
      failwith
        (Printf.sprintf "seqd: socket %s not up after %.1fs"
           config.socket_path timeout_s)
    else begin
      Unix.sleepf 0.02;
      wait ()
    end
  in
  wait ();
  { domain; hconfig = config; stopped = false }

let stop handle =
  if not handle.stopped then begin
    handle.stopped <- true;
    (try
       Client.with_connection handle.hconfig.socket_path Client.shutdown
     with Unix.Unix_error _ | Proto.Error _ | Failure _ -> ());
    Domain.join handle.domain
  end
