(** seqd accept loop: select-multiplexed orchestrator, pool-dispatched
    evaluation, graceful drain (see .mli). *)

type config = {
  socket_path : string;
  tcp : (string * int) option;
  cache_dir : string option;
  mem_capacity : int;
  jobs : int;
  max_inflight : int;
  default_budget : Engine.Budget.spec;
}

let default_config ~socket_path =
  {
    socket_path;
    tcp = None;
    cache_dir = None;
    mem_capacity = 4096;
    jobs = 1;
    max_inflight = 8;
    default_budget = Engine.Budget.spec_unlimited;
  }

(* ------------------------------------------------------------------ *)
(* connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Connections are keyed by a fresh integer id, never by fd: the kernel
   reuses fd numbers immediately, so a completion for a closed
   connection must not be deliverable to its fd's successor. *)
type conn = {
  cid : int;
  fd : Unix.file_descr;
  asm : Proto.Assembler.t;
  mutable evaluating : bool;  (* one request of this conn is on the pool *)
  mutable out : Bytes.t;  (* unflushed response bytes *)
  mutable out_pos : int;
}

let out_pending c = c.out_pos < Bytes.length c.out

(* The stop flag is set from a signal handler (same domain, but
   asynchronous) or by a [Shutdown] request on a worker domain: Atomic
   keeps both correct. *)
let serve_loop (config : config) (stop : bool Atomic.t) =
  let handler =
    Handler.create ?cache_dir:config.cache_dir
      ~mem_capacity:config.mem_capacity
      ~default_budget:config.default_budget ()
  in
  let metrics = Handler.metrics handler in
  let pool = Engine.Pool.create ~jobs:config.jobs ~dedicated:true () in
  let unix_addr = Addr.Unix_sock config.socket_path in
  let listeners =
    let unix_l = Addr.listen_fd unix_addr in
    match config.tcp with
    | None -> [ unix_l ]
    | Some (host, port) -> [ unix_l; Addr.listen_fd (Addr.Tcp (host, port)) ]
  in
  List.iter Unix.set_nonblock listeners;
  (* Self-pipe: worker completions (and signal handlers) write one byte
     to break the orchestrator out of [select]. *)
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let wake () =
    try ignore (Unix.write wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let completions : (int * Proto.response) Queue.t = Queue.create () in
  let completions_mutex = Mutex.create () in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let inflight = ref 0 in
  let draining = ref false in
  let listeners_open = ref true in
  let rdbuf = Bytes.create 65536 in
  let close_conn c =
    Hashtbl.remove conns c.cid;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  (* Queue a response and flush opportunistically (the common case: the
     whole frame fits in the socket buffer in one write). *)
  let flush c =
    match
      Unix.write c.fd c.out c.out_pos (Bytes.length c.out - c.out_pos)
    with
    | n -> c.out_pos <- c.out_pos + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let respond c resp =
    c.out <-
      Bytes.of_string
        (Proto.Assembler.frame_bytes (Proto.encode_response resp));
    c.out_pos <- 0;
    flush c
  in
  (* Dispatch or answer the next fully-assembled request of [c], if any.
     Invariant: at most one request per connection is in flight, and the
     next frame is not decoded until the previous response has been
     flushed — responses on a connection are always in request order. *)
  let rec process_ready c =
    if (not c.evaluating) && not (out_pending c) then
      match Proto.Assembler.next c.asm with
      | None -> ()
      | Some payload ->
        (match Proto.decode_request payload with
         | exception Proto.Error msg ->
           respond c (Proto.Err ("protocol: " ^ msg))
         | Proto.Ping | Proto.Stats | Proto.Shutdown as req ->
           (* cheap control requests: answered inline on the
              orchestrator, never queued behind evaluations *)
           let resp = Handler.handle ~pool handler req in
           if resp = Proto.Bye then begin
             Atomic.set stop true;
             wake ()
           end;
           respond c resp
         | req ->
           if !draining || !inflight >= config.max_inflight then begin
             Engine.Metrics.incr metrics "req.busy";
             respond c Proto.Busy
           end
           else begin
             incr inflight;
             c.evaluating <- true;
             let cid = c.cid in
             Engine.Pool.submit pool (fun () ->
                 let resp = Handler.handle ~pool handler req in
                 Mutex.lock completions_mutex;
                 Queue.push (cid, resp) completions;
                 Mutex.unlock completions_mutex;
                 wake ())
           end);
        (* an inline answer may already be flushed: serve pipelined
           frames without waiting for another readiness event *)
        process_ready c
  in
  let accept lfd =
    match Unix.accept lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let c =
        {
          cid = !next_cid;
          fd;
          asm = Proto.Assembler.create ();
          evaluating = false;
          out = Bytes.create 0;
          out_pos = 0;
        }
      in
      incr next_cid;
      Hashtbl.replace conns c.cid c
    | exception Unix.Unix_error _ -> ()
  in
  let read_conn c =
    match Unix.read c.fd rdbuf 0 (Bytes.length rdbuf) with
    | 0 -> close_conn c (* EOF; a pending completion is dropped later *)
    | n -> (
      match Proto.Assembler.feed c.asm rdbuf 0 n with
      | () -> process_ready c
      | exception Proto.Error _ ->
        (* framing violation: the stream is desynchronized beyond
           recovery, so the connection dies (clients reconnect) *)
        close_conn c)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let drain_completions () =
    let batch =
      Mutex.lock completions_mutex;
      let q = Queue.copy completions in
      Queue.clear completions;
      Mutex.unlock completions_mutex;
      q
    in
    Queue.iter
      (fun (cid, resp) ->
        decr inflight;
        match Hashtbl.find_opt conns cid with
        | None -> () (* connection died while we evaluated *)
        | Some c ->
          c.evaluating <- false;
          respond c resp;
          if not (out_pending c) then process_ready c)
      batch
  in
  let close_listeners () =
    if !listeners_open then begin
      listeners_open := false;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        listeners
    end
  in
  let finished = ref false in
  while not !finished do
    drain_completions ();
    if Atomic.get stop then begin
      if not !draining then begin
        draining := true;
        close_listeners ()
      end;
      (* Drain: in-flight evaluations finish and their responses (and
         any partially-written ones) are flushed; idle connections are
         dropped. *)
      if !inflight = 0 then begin
        Hashtbl.fold
          (fun _ c acc -> if out_pending c then acc else c :: acc)
          conns []
        |> List.iter close_conn;
        if Hashtbl.length conns = 0 then finished := true
      end
    end;
    if not !finished then begin
      let reads =
        wake_r
        :: ((if !listeners_open then listeners else [])
           @ Hashtbl.fold
               (fun _ c acc ->
                 (* flow control: stop reading while a request is being
                    evaluated or a response is still flushing *)
                 if c.evaluating || out_pending c || !draining then acc
                 else c.fd :: acc)
               conns [])
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc -> if out_pending c then c.fd :: acc else acc)
          conns []
      in
      match Unix.select reads writes [] 0.2 with
      | rs, ws, _ ->
        if List.mem wake_r rs then (
          try
            while Unix.read wake_r rdbuf 0 64 > 0 do
              ()
            done
          with Unix.Unix_error _ -> ());
        List.iter
          (fun fd ->
            match
              Hashtbl.fold
                (fun _ c acc -> if c.fd = fd then Some c else acc)
                conns None
            with
            | Some c ->
              flush c;
              if not (out_pending c) then process_ready c
            | None -> ())
          ws;
        List.iter
          (fun fd ->
            if fd <> wake_r then
              if !listeners_open && List.mem fd listeners then accept fd
              else
                match
                  Hashtbl.fold
                    (fun _ c acc -> if c.fd = fd then Some c else acc)
                    conns None
                with
                | Some c ->
                  if (not c.evaluating) && not (out_pending c) then
                    read_conn c
                | None -> ())
          rs
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  close_listeners ();
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  Addr.unlink_if_unix unix_addr;
  Engine.Pool.shutdown pool

let run ?(signals = true) config =
  let stop = Atomic.make false in
  let previous = ref [] in
  if signals then
    List.iter
      (fun signum ->
        let old =
          Sys.signal signum
            (Sys.Signal_handle (fun _ -> Atomic.set stop true))
        in
        previous := (signum, old) :: !previous)
      [ Sys.sigint; Sys.sigterm ];
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (signum, old) -> Sys.set_signal signum old) !previous)
    (fun () -> serve_loop config stop)

(* ------------------------------------------------------------------ *)
(* in-process servers                                                  *)
(* ------------------------------------------------------------------ *)

type handle = {
  domain : unit Domain.t;
  hconfig : config;
  mutable stopped : bool;
}

let socket_ready path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
    let ok =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    ok

let spawn ?(timeout_s = 10.0) config =
  let domain = Domain.spawn (fun () -> run ~signals:false config) in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    if socket_ready config.socket_path then ()
    else if Unix.gettimeofday () > deadline then
      failwith
        (Printf.sprintf "seqd: socket %s not up after %.1fs"
           config.socket_path timeout_s)
    else begin
      Unix.sleepf 0.02;
      wait ()
    end
  in
  wait ();
  { domain; hconfig = config; stopped = false }

let stop handle =
  if not handle.stopped then begin
    handle.stopped <- true;
    (try
       Client.with_connection handle.hconfig.socket_path Client.shutdown
     with Unix.Unix_error _ | Proto.Error _ | Failure _ -> ());
    Domain.join handle.domain
  end
