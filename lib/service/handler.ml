(** seqd request evaluation over the existing checkers (see .mli). *)

open Lang

type t = {
  cache : Cache.t;
  metrics : Engine.Metrics.t;
  default_budget : Engine.Budget.spec;
}

let create ?cache_dir ?(mem_capacity = 4096)
    ?(default_budget = Engine.Budget.spec_unlimited) () =
  {
    cache = Cache.create ?dir:cache_dir ~mem_capacity ();
    metrics = Engine.Metrics.create ();
    default_budget;
  }

let metrics t = t.metrics
let cache t = t.cache

(* ------------------------------------------------------------------ *)
(* budgets and small helpers                                           *)
(* ------------------------------------------------------------------ *)

(* The request's own budget wins field-wise over the handler default. *)
let spec_of t (b : Proto.budget) : Engine.Budget.spec =
  {
    Engine.Budget.timeout_ms =
      (match b.Proto.timeout_ms with
       | Some _ as ms -> ms
       | None -> t.default_budget.Engine.Budget.timeout_ms);
    max_states =
      (match b.Proto.max_states with
       | Some _ as n -> n
       | None -> t.default_budget.Engine.Budget.max_states);
    max_fuel = t.default_budget.Engine.Budget.max_fuel;
  }

let values_of = function
  | [] -> Domain.default_values
  | vs -> List.map (fun n -> Value.Int n) vs

let of_validate (v : Optimizer.Validate.verdict) =
  let verdict : Proto.verdict =
    if not v.Optimizer.Validate.valid then Proto.Refuted
    else if v.Optimizer.Validate.simple then Proto.Refines_simple
    else Proto.Refines_advanced
  in
  let origin : Proto.origin =
    match v.Optimizer.Validate.proof with
    | Optimizer.Validate.Static _ -> Proto.Static
    | Optimizer.Validate.Static_abs _ -> Proto.Static_abs
    | Optimizer.Validate.Enumerated -> Proto.Enumerated
  in
  (verdict, origin)

let count_verdict t (v : Proto.verdict) =
  Engine.Metrics.incr t.metrics
    (match v with
     | Proto.Refines_simple -> "verdict.refines_simple"
     | Proto.Refines_advanced -> "verdict.refines_advanced"
     | Proto.Refuted -> "verdict.refuted"
     | Proto.Unknown _ -> "verdict.unknown")

(* ------------------------------------------------------------------ *)
(* the cache wrapper                                                   *)
(* ------------------------------------------------------------------ *)

(* Serve [key] from the cache, else compute, count the tier, and store
   the response when [cacheable] says the answer is definite.  The
   cached payload is the encoded response with tier [Computed]; hits are
   re-tagged with the tier they were served from, so proof provenance
   survives across tiers. *)
let cached t ~key ~cacheable compute =
  match Cache.find t.cache key with
  | Some (payload, hit) ->
    let tier : Proto.tier =
      match hit with Cache.Hit_mem -> Proto.Mem | Cache.Hit_disk -> Proto.Disk
    in
    (match Proto.decode_response payload with
     | resp ->
       Engine.Metrics.incr t.metrics
         (match tier with
          | Proto.Mem -> "tier.mem"
          | _ -> "tier.disk");
       Proto.with_tier resp tier
     | exception Proto.Error _ ->
       (* digest-valid but undecodable payload (format skew): recompute *)
       Engine.Metrics.incr t.metrics "tier.computed";
       let resp = compute () in
       if cacheable resp then
         Cache.add t.cache key (Proto.encode_response resp);
       resp)
  | None ->
    Engine.Metrics.incr t.metrics "tier.computed";
    let resp = compute () in
    if cacheable resp then Cache.add t.cache key (Proto.encode_response resp);
    resp

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_key (c : Proto.check) ~(src : Stmt.t) ~(tgt : Stmt.t) ~values =
  Fingerprint.key
    [
      "check";
      Fingerprint.canonical_stmt src;
      Fingerprint.canonical_stmt tgt;
      Fingerprint.canonical_values values;
      (if c.Proto.fast_path then "fp" else "nofp");
      (* per-backend verdicts must never be served for one another *)
      "backend:" ^ c.Proto.backend;
    ]

(* A check under a hardware backend: behavior-set inclusion under the
   named machine (no static certificates — always enumerated).  A
   truncated exploration leaves the verdict Unknown (not cached). *)
let check_hw t (module M : Backends.Backend.MACHINE) ~src ~tgt ~values
    (b : Proto.budget) : Proto.response =
  let budget = Engine.Budget.start (spec_of t b) in
  match
    Engine.Verdict.capture (fun () ->
        let r_src = M.explore ~values ~budget [ src ] in
        let r_tgt = M.explore ~values ~budget [ tgt ] in
        if r_src.Backends.Backend.truncated || r_tgt.Backends.Backend.truncated
        then None
        else Some (Backends.Backend.refines ~src:r_src ~tgt:r_tgt))
  with
  | Ok (Some refines) ->
    Engine.Metrics.incr t.metrics "origin.enumerated";
    Proto.Checked
      {
        verdict = (if refines then Proto.Refines_simple else Proto.Refuted);
        origin = Some Proto.Enumerated;
        tier = Proto.Computed;
        states = Engine.Budget.states_used budget;
      }
  | Ok None ->
    Proto.Checked
      {
        verdict = Proto.Unknown (Printf.sprintf "%s: truncated" M.name);
        origin = None;
        tier = Proto.Computed;
        states = Engine.Budget.states_used budget;
      }
  | Error reason ->
    Proto.Checked
      {
        verdict = Proto.Unknown (Engine.Verdict.reason_to_string reason);
        origin = None;
        tier = Proto.Computed;
        states = Engine.Budget.states_used budget;
      }

let serve_check t (c : Proto.check) (b : Proto.budget) : Proto.check_result =
  match
    ( Parser.stmt_of_string c.Proto.src,
      Parser.stmt_of_string c.Proto.tgt )
  with
  | exception Parser.Error msg ->
    let cr : Proto.check_result =
      {
        verdict = Proto.Unknown (Printf.sprintf "parse: %s" msg);
        origin = None;
        tier = Proto.Computed;
        states = 0;
      }
    in
    Engine.Metrics.incr t.metrics "tier.computed";
    count_verdict t cr.Proto.verdict;
    cr
  | src, tgt ->
    let values = values_of c.Proto.values in
    let key = check_key c ~src ~tgt ~values in
    let resp =
      cached t ~key
        ~cacheable:(function
          | Proto.Checked { verdict = Proto.Unknown _; _ } -> false
          | Proto.Checked _ -> true
          | _ -> false)
        (fun () ->
          if c.Proto.backend <> Proto.default_backend then
            match Backends.Registry.find c.Proto.backend with
            | Some m -> check_hw t m ~src ~tgt ~values b
            | None ->
              Proto.Checked
                {
                  verdict =
                    Proto.Unknown
                      (Printf.sprintf "unknown backend %S" c.Proto.backend);
                  origin = None;
                  tier = Proto.Computed;
                  states = 0;
                }
          else
          let budget = Engine.Budget.start (spec_of t b) in
          match
            Engine.Verdict.capture (fun () ->
                Optimizer.Validate.validate ~values
                  ~fast_path:c.Proto.fast_path ~budget ~src ~tgt ())
          with
          | Ok v ->
            let verdict, origin = of_validate v in
            (match origin with
             | Proto.Static -> Engine.Metrics.incr t.metrics "origin.static"
             | Proto.Static_abs ->
               Engine.Metrics.incr t.metrics "origin.static_abs"
             | Proto.Enumerated ->
               Engine.Metrics.incr t.metrics "origin.enumerated");
            Proto.Checked
              {
                verdict;
                origin = Some origin;
                tier = Proto.Computed;
                states = Engine.Budget.states_used budget;
              }
          | Error reason ->
            Proto.Checked
              {
                verdict =
                  Proto.Unknown (Engine.Verdict.reason_to_string reason);
                origin = None;
                tier = Proto.Computed;
                states = Engine.Budget.states_used budget;
              })
    in
    (match resp with
     | Proto.Checked cr ->
       count_verdict t cr.Proto.verdict;
       cr
     | _ ->
       (* unreachable: check keys only ever store Checked payloads *)
       {
         verdict = Proto.Unknown "cache: foreign payload";
         origin = None;
         tier = Proto.Computed;
         states = 0;
       })

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let serve_lint t ~prog ~hints : Proto.response =
  match Parser.threads_of_string prog with
  | exception Parser.Error msg -> Proto.Err (Printf.sprintf "parse: %s" msg)
  | threads ->
    let key =
      Fingerprint.key
        [
          "lint";
          Fingerprint.canonical_threads threads;
          (if hints then "hints" else "nohints");
        ]
    in
    cached t ~key
      ~cacheable:(function Proto.Linted _ -> true | _ -> false)
      (fun () ->
        let diags = Optimizer.Lint.lint ~hints threads in
        let count sev =
          List.length
            (List.filter (fun d -> d.Optimizer.Lint.sev = sev) diags)
        in
        Proto.Linted
          {
            errors = count Optimizer.Lint.Error;
            warnings = count Optimizer.Lint.Warning;
            hints = count Optimizer.Lint.Hint;
            rendered =
              Optimizer.Lint.render ~threads:(List.length threads) diags;
            tier = Proto.Computed;
          })

(* ------------------------------------------------------------------ *)
(* optimize                                                            *)
(* ------------------------------------------------------------------ *)

let serve_optimize t ~prog ~values ~fast_path (b : Proto.budget) :
    Proto.response =
  match Parser.stmt_of_string prog with
  | exception Parser.Error msg -> Proto.Err (Printf.sprintf "parse: %s" msg)
  | input ->
    let values = values_of values in
    let key =
      Fingerprint.key
        [
          "optimize";
          Fingerprint.canonical_stmt input;
          Fingerprint.canonical_values values;
          (if fast_path then "fp" else "nofp");
        ]
    in
    cached t ~key
      ~cacheable:(function
        | Proto.Optimized { result = { verdict = Proto.Unknown _; _ }; _ } ->
          false
        | Proto.Optimized _ -> true
        | _ -> false)
      (fun () ->
        let budget = Engine.Budget.start (spec_of t b) in
        match
          Engine.Verdict.capture (fun () ->
              Optimizer.Validate.certified_optimize ~values ~fast_path ~budget
                input)
        with
        | Ok (report, v) ->
          let verdict, origin = of_validate v in
          (match origin with
           | Proto.Static -> Engine.Metrics.incr t.metrics "origin.static"
           | Proto.Static_abs ->
             Engine.Metrics.incr t.metrics "origin.static_abs"
           | Proto.Enumerated ->
             Engine.Metrics.incr t.metrics "origin.enumerated");
          Proto.Optimized
            {
              output = Stmt.to_string report.Optimizer.Driver.output;
              result =
                {
                  verdict;
                  origin = Some origin;
                  tier = Proto.Computed;
                  states = Engine.Budget.states_used budget;
                };
              passes =
                List.map
                  (fun (p : Optimizer.Driver.pass_report) ->
                    ( Optimizer.Driver.pass_name p.Optimizer.Driver.pass,
                      p.Optimizer.Driver.rewrites ))
                  report.Optimizer.Driver.passes;
            }
        | Error reason ->
          Proto.Optimized
            {
              output = prog;
              result =
                {
                  verdict =
                    Proto.Unknown (Engine.Verdict.reason_to_string reason);
                  origin = None;
                  tier = Proto.Computed;
                  states = Engine.Budget.states_used budget;
                };
              passes = [];
            })

(* ------------------------------------------------------------------ *)
(* litmus                                                              *)
(* ------------------------------------------------------------------ *)

let serve_litmus t ~prog ~(params : Proto.litmus_params) (b : Proto.budget) :
    Proto.response =
  match Parser.threads_of_string prog with
  | exception Parser.Error msg -> Proto.Err (Printf.sprintf "parse: %s" msg)
  | threads ->
    let mparams =
      {
        Promising.Thread.default_params with
        promise_budget = params.Proto.promises;
        batch_bound = params.Proto.batch;
        max_states = params.Proto.lit_max_states;
      }
    in
    let key =
      Fingerprint.key
        [
          "litmus";
          Fingerprint.canonical_threads threads;
          Promising.Machine.params_fingerprint mparams;
          (* params_fingerprint covers certification-relevant fields
             only; max_states changes truncation, so key it too *)
          string_of_int mparams.Promising.Thread.max_states;
        ]
    in
    cached t ~key
      ~cacheable:(function Proto.Litmus_result _ -> true | _ -> false)
      (fun () ->
        let budget = Engine.Budget.start (spec_of t b) in
        match Promising.Machine.explore_v ~params:mparams ~budget threads with
        | Ok r ->
          Proto.Litmus_result
            {
              behaviors =
                Fmt.str "%a" Promising.Machine.pp_behaviors
                  r.Promising.Machine.behaviors;
              states = r.Promising.Machine.states;
              races = r.Promising.Machine.races;
              truncated = r.Promising.Machine.truncated;
              tier = Proto.Computed;
            }
        | Error reason ->
          Proto.Err
            (Printf.sprintf "UNKNOWN(%s)"
               (Engine.Verdict.reason_to_string reason)))

(* ------------------------------------------------------------------ *)
(* stats + dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let stats_snapshot t =
  let s = Cache.stats t.cache in
  Engine.Metrics.render t.metrics
  ^ Printf.sprintf
      "cache.mem_entries %d\ncache.hits_mem %d\ncache.hits_disk %d\n\
       cache.misses %d\ncache.writes %d\n"
      (Cache.mem_size t.cache) s.Cache.hits_mem s.Cache.hits_disk
      s.Cache.misses s.Cache.writes

let req_kind : Proto.request -> string = function
  | Proto.Ping -> "ping"
  | Proto.Check _ -> "check"
  | Proto.Batch _ -> "batch"
  | Proto.Lint _ -> "lint"
  | Proto.Optimize _ -> "optimize"
  | Proto.Litmus _ -> "litmus"
  | Proto.Stats -> "stats"
  | Proto.Shutdown -> "shutdown"

let handle ?pool t (req : Proto.request) : Proto.response =
  let kind = req_kind req in
  Engine.Metrics.incr t.metrics ("req." ^ kind);
  let resp, ms =
    Engine.Stats.timed (fun () ->
        try
          match req with
          | Proto.Ping -> Proto.Pong
          | Proto.Check (c, b) -> Proto.Checked (serve_check t c b)
          | Proto.Batch (cs, b) ->
            (* one parallel sweep over the engine pool; each item is
               served through the cache independently (Cache and Metrics
               are domain-safe) *)
            Proto.Batched
              (Engine.Sweep.run ?pool ~f:(fun c -> serve_check t c b) cs)
          | Proto.Lint { prog; hints } -> serve_lint t ~prog ~hints
          | Proto.Optimize (o, b) ->
            serve_optimize t ~prog:o.Proto.oprog ~values:o.Proto.ovalues
              ~fast_path:o.Proto.ofast_path b
          | Proto.Litmus (l, b) ->
            serve_litmus t ~prog:l.Proto.lprog ~params:l.Proto.lparams b
          | Proto.Stats -> Proto.Stats_result (stats_snapshot t)
          | Proto.Shutdown -> Proto.Bye
        with exn ->
          (* the handler is total: an escaping exception would take the
             daemon down with it *)
          Proto.Err (Printf.sprintf "internal: %s" (Printexc.to_string exn)))
  in
  Engine.Metrics.observe t.metrics ("latency." ^ kind) ms;
  resp
