(** Service endpoint addresses: a Unix-domain socket path or a TCP
    host/port, with one shared connect/listen path so the daemon, the
    client, and the chaos proxy all speak to either transport
    identically. *)

type t =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of string * int  (** host (name or dotted quad), port *)

(** Parse an address string: ["tcp:HOST:PORT"] is TCP (an empty host
    means 127.0.0.1), anything else is a Unix socket path.
    @raise Failure on a malformed TCP address. *)
val of_string : string -> t

(** Parse a bare ["HOST:PORT"] (no [tcp:] prefix) — the [seqd --tcp]
    argument.  @raise Failure if malformed. *)
val parse_hostport : string -> t

(** Round-trips with {!of_string}. *)
val to_string : t -> string

(** Bound, listening socket for this address.  Unix: any stale socket
    file is unlinked first.  TCP: [SO_REUSEADDR] is set.  [backlog]
    defaults to 64.  @raise Unix.Unix_error on bind failure. *)
val listen_fd : ?backlog:int -> t -> Unix.file_descr

(** Blocking-mode connected socket.  With [timeout_ms] the connect is
    bounded (nonblocking connect + select + [SO_ERROR]), raising
    [Unix.Unix_error (ETIMEDOUT, _, _)] on expiry.  TCP sockets get
    [TCP_NODELAY].  @raise Unix.Unix_error if nothing listens there. *)
val connect_fd : ?timeout_ms:float -> t -> Unix.file_descr

(** Remove the socket file of a Unix address (no-op for TCP, and for
    already-missing files). *)
val unlink_if_unix : t -> unit
