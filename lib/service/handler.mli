(** Request evaluation: the seqd semantics, independent of any socket.

    A handler owns the two-tier result {!Cache} and the {!Engine.Metrics}
    registry and maps one {!Proto.request} to one {!Proto.response}.  The
    {!Server} drives it from a Unix socket; tests and the bench harness
    drive it directly or through an in-process server.

    Caching discipline:
    - cache keys are {!Lang.Fingerprint.key} digests over the request
      kind, the {e canonical} program rendering, and every parameter the
      answer depends on (domain values, fast-path switch, litmus machine
      params including [max_states]) — never the budget;
    - only definite answers are stored ([Unknown]/[Err] results depend on
      the budget and are recomputed);
    - the cached payload is the encoded response with tier [Computed];
      on a hit it is re-tagged [Mem]/[Disk] ({!Proto.with_tier}), so the
      original proof provenance ([static]/[enumerated]) survives
      verbatim — a warm corpus answers with zero enumerations and still
      reports how each verdict was first established.

    [handle] never raises: parse failures and internal errors become
    [Err]/[Unknown] responses. *)

type t

(** [create ()]: [cache_dir = None] keeps the cache memory-only;
    [default_budget] (default unlimited) applies to requests that carry
    no budget of their own. *)
val create :
  ?cache_dir:string ->
  ?mem_capacity:int ->
  ?default_budget:Engine.Budget.spec ->
  unit ->
  t

val metrics : t -> Engine.Metrics.t
val cache : t -> Cache.t

(** Evaluate one request.  [pool] parallelizes [Batch] sweeps (absent:
    sequential); counters, latency reservoirs and the cache are updated
    as a side effect. *)
val handle : ?pool:Engine.Pool.t -> t -> Proto.request -> Proto.response

(** Metrics + cache counters, the payload of the [stats] RPC. *)
val stats_snapshot : t -> string

(** Translate a local {!Optimizer.Validate.verdict} into the wire
    verdict/origin (exposed so tests can assert the server's answer is
    byte-identical to a local run's). *)
val of_validate : Optimizer.Validate.verdict -> Proto.verdict * Proto.origin
